"""The shipped AutoLearn educational materials.

§3.5: "The AutoLearn educational materials include documentation
supporting different roles and different settings.  For directed
learning, we provide documentation for educators including course
objectives, explanations of what hardware to buy and alternatives,
proposed project extensions, and a one-page TA checklist.  To support
students, our GitBook is documented with extensive comments with
instructions ...  Finally, we provide a special documentation pathway
for digital self-learners."

This module builds that content programmatically: the populated
GitBook, the course objectives, the ~$200 hardware kit list (§3.1), and
the TA checklist — so the artifact bundle published to Trovi carries
real materials, not placeholders.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.artifacts.gitbook import GitBook
from repro.core.pathways import ASSIGNMENTS

__all__ = [
    "KitItem",
    "HARDWARE_KIT",
    "kit_total_usd",
    "COURSE_OBJECTIVES",
    "TA_CHECKLIST",
    "build_autolearn_gitbook",
    "notebook_bundle",
]


@dataclass(frozen=True)
class KitItem:
    """One line of the recommended shopping list."""

    name: str
    price_usd: float
    required: bool = True
    alternative: str = ""


#: §3.1: "inexpensive ~($200) and generally available cars kits and
#: accessories that minimize the configuration time".
HARDWARE_KIT: tuple[KitItem, ...] = (
    KitItem("Waveshare PiRacer Pro AI Kit", 115.0,
            alternative="any 1/10 RC chassis + servo HAT"),
    KitItem("Raspberry Pi 4 (4 GB)", 55.0, alternative="Raspberry Pi 3B+"),
    KitItem("32 GB microSD card", 9.0),
    KitItem("Wide-angle Pi camera", 14.0),
    KitItem("18650 batteries + charger", 18.0),
    KitItem("Orange gaffer tape (track)", 12.0, required=False,
            alternative="Waveshare printed track mat"),
    KitItem("USB game controller", 15.0, required=False,
            alternative="DonkeyCar web controller (free)"),
)


def kit_total_usd(required_only: bool = True) -> float:
    """Total cost of the kit (~$200 for the required items)."""
    return sum(
        item.price_usd for item in HARDWARE_KIT
        if item.required or not required_only
    )


COURSE_OBJECTIVES: tuple[str, ...] = (
    "familiarity with assembling hardware",
    "basic familiarity with systems topics (UNIX, configuring hardware "
    "and software)",
    "basic familiarity with cloud and edge computing",
    "basics of computer simulation",
    "ML topics spanning data collection and cleaning, training a ML "
    "model, and actuating a successful ML model with an autonomous car",
)


TA_CHECKLIST: tuple[str, ...] = (
    "request a Chameleon project in computer science education",
    "add every student to the project (federated identity)",
    "enroll the classroom cars via CHI@Edge BYOD (register, flash, boot)",
    "whitelist the class project on each car",
    "make an advance reservation for GPU nodes covering the lab slot",
    "publish the sample datasets to the object store",
    "verify the AutoLearn Docker image launches on one car (one cell)",
    "replicate the default tape oval: inner 330 in, outer 509 in, "
    "width 27.59 in",
    "dry-run the training notebook end to end the day before",
    "post the feedback/Google-group links on the course page",
)


def build_autolearn_gitbook() -> GitBook:
    """The populated CHI@Edge Education GitBook."""
    book = GitBook(title="CHI@Edge Education")

    book.add_page(
        "educator/objectives.md", "Course objectives",
        "Learning outcomes for the module:\n"
        + "\n".join(f"- {o}" for o in COURSE_OBJECTIVES),
        audience="educator",
    )
    kit_lines = [
        f"- {item.name}: ${item.price_usd:.0f}"
        + ("" if item.required else " (optional)")
        + (f" — alternative: {item.alternative}" if item.alternative else "")
        for item in HARDWARE_KIT
    ]
    book.add_page(
        "educator/hardware.md", "What hardware to buy",
        f"Recommended kit (~${kit_total_usd():.0f} required):\n"
        + "\n".join(kit_lines),
        audience="educator",
    )
    book.add_page(
        "educator/ta-checklist.md", "One-page TA checklist",
        "\n".join(f"{i + 1}. {step}" for i, step in enumerate(TA_CHECKLIST)),
        audience="educator",
    )
    book.add_page(
        "educator/extensions.md", "Proposed project extensions",
        "\n".join(
            f"- [{a.level}] {a.title}: {a.description}" for a in ASSIGNMENTS
        ),
        audience="educator",
    )

    book.add_page(
        "student/01-setup.md", "Set up the car",
        "Assemble the PiRacer kit, flash the CHI@Edge SD image, and boot. "
        "Once the daemon connects, the car appears as a reservable "
        "Chameleon resource.  Launch the AutoLearn container with one "
        "notebook cell — it pre-installs all DonkeyCar dependencies and "
        "the Basic Jupyter Server appliance, reachable from your laptop "
        "over an SSH tunnel.",
        audience="student",
    )
    book.add_page(
        "student/02-collect.md", "Collect and clean data",
        "Drive with the joystick or the web controller (same "
        "functionality via the browser).  Data lands on the Pi under "
        "/car/data as a tub: .catalog files with steering/throttle, an "
        "images directory keyed by record id, catalog_manifest sidecars, "
        "and a manifest.json where deletions are marked.  Review your "
        "session with tubclean and delete crashes and off-side images; "
        "then rsync the tub to your cloud node.",
        audience="student",
    )
    book.add_page(
        "student/03-train.md", "Train models",
        "Reserve a GPU node (any of A100, V100, v100NVLINK, RTX6000, "
        "P100 works; the notebook deploys the Ubuntu 20.04 CUDA image "
        "and installs Donkey, Tensorflow and CUDNN).  Start with the "
        "linear model; then compare memory, 3D, categorical, inferred "
        "and RNN on the same tub.",
        audience="student",
    )
    book.add_page(
        "student/04-evaluate.md", "Evaluate on the track",
        "Download the trained model onto the car and drive autonomously, "
        "measuring speed and number of errors per lap.  No car?  Run the "
        "same evaluation in the simulator — or both, and compare: that "
        "difference is your digital twin gap.",
        audience="student",
    )
    book.add_page(
        "community/contributing.md", "Contributing community",
        "Fork the module, make your changes, and open a merge request to "
        "the original repository; accepted changes become a new artifact "
        "version on Trovi.",
        audience="self-learner",
    )
    book.add_page(
        "community/feedback.md", "How to provide feedback",
        "Post to the chameleon-education Google Group: bug reports, "
        "case studies of classroom use, and ideas for extensions.",
        audience="self-learner",
    )
    return book


def notebook_bundle() -> dict[str, bytes]:
    """The artifact files published to Trovi (notebook series, §3.5)."""
    book = build_autolearn_gitbook()
    bundle = {
        path: page.content.encode("utf-8")
        for path, page in ((p, book.page(p)) for p, _ in book.toc())
    }
    for notebook in (
        "01-reserve-and-deploy.ipynb",
        "02-collect-and-clean.ipynb",
        "03-train-on-gpu.ipynb",
        "04-evaluate-on-car.ipynb",
    ):
        bundle[notebook] = f"# {notebook} (executable module step)".encode()
    return bundle
