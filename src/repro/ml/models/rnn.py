"""KerasRNN_LSTM equivalent: time-distributed CNN feeding an LSTM.

A small conv backbone is applied to each frame of a short window
(time folded into the batch — a reshape, not a copy), the per-frame
features feed an LSTM, and the final hidden state regresses (angle,
throttle).
"""

from __future__ import annotations

import numpy as np

from repro.ml.layers import LSTM, Conv2D, Dense, Dropout, Flatten, TimeDistributed
from repro.ml.models.base import DonkeyModel
from repro.ml.network import Sequential

__all__ = ["RNNModel"]


class RNNModel(DonkeyModel):
    """Frame window -> LSTM -> (angle, throttle)."""

    name = "rnn"
    sequence_length = 3
    targets = "both"
    loss_name = "mse"

    def __init__(
        self,
        input_shape: tuple[int, int, int] = (120, 160, 3),
        scale: float = 1.0,
        dropout: float = 0.2,
        seed: int = 0,
        sequence_length: int = 3,
        lstm_units: int | None = None,
    ) -> None:
        super().__init__(input_shape)
        self.sequence_length = int(sequence_length)
        if self.sequence_length < 2:
            raise ValueError("rnn model needs sequence_length >= 2")
        from collections import deque

        self._frame_buffer = deque(maxlen=self.sequence_length)
        units = lstm_units or max(8, int(64 * scale))

        def f(n: int) -> int:
            return max(2, int(round(n * scale)))

        layers = [
            TimeDistributed(Conv2D(f(24), 5, 2, activation="relu")),
            TimeDistributed(Conv2D(f(32), 5, 2, activation="relu")),
            TimeDistributed(Conv2D(f(32), 3, 2, activation="relu")),
            TimeDistributed(Flatten()),
            TimeDistributed(Dense(max(8, int(64 * scale)), activation="relu")),
            LSTM(units, return_sequences=False),
            Dropout(dropout, seed=seed + 1),
            Dense(max(4, int(32 * scale)), activation="relu"),
            Dense(2, activation="linear"),
        ]
        self.net = Sequential(
            layers, (self.sequence_length, *input_shape), seed=seed
        )

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.net.forward(x, training)

    def backward(self, grad: np.ndarray) -> None:
        self.net.backward(grad)

    @property
    def params(self) -> list[np.ndarray]:
        return self.net.params

    @property
    def grads(self) -> list[np.ndarray]:
        return self.net.grads

    def predict_batch(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        out = self.net.predict(x, batch_size=32)
        return np.clip(out[:, 0], -1, 1), np.clip(out[:, 1], -1, 1)
