"""KerasLinear equivalent: the beginner model.

"By default, a learner can start with the Linear model with an easy to
understand pipeline" — paper §3.3.  Standard conv backbone, two dense
layers, two linear outputs (angle, throttle), MSE loss.
"""

from __future__ import annotations

import numpy as np

from repro.ml.layers import Dense, Dropout
from repro.ml.models.base import DonkeyModel, default_backbone_layers
from repro.ml.network import Sequential

__all__ = ["LinearModel"]


class LinearModel(DonkeyModel):
    """Image -> (angle, throttle) regression."""

    name = "linear"
    sequence_length = 0
    targets = "both"
    loss_name = "mse"

    def __init__(
        self,
        input_shape: tuple[int, int, int] = (120, 160, 3),
        scale: float = 1.0,
        dropout: float = 0.2,
        seed: int = 0,
    ) -> None:
        super().__init__(input_shape)
        layers = default_backbone_layers(dropout=dropout, scale=scale, seed=seed, input_shape=input_shape)
        layers += [
            Dense(max(8, int(100 * scale)), activation="relu"),
            Dropout(dropout, seed=seed + 6),
            Dense(max(4, int(50 * scale)), activation="relu"),
            Dropout(dropout, seed=seed + 7),
            Dense(2, activation="linear"),
        ]
        self.net = Sequential(layers, input_shape, seed=seed)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.net.forward(x, training)

    def backward(self, grad: np.ndarray) -> None:
        self.net.backward(grad)

    @property
    def params(self) -> list[np.ndarray]:
        return self.net.params

    @property
    def grads(self) -> list[np.ndarray]:
        return self.net.grads

    def predict_batch(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        out = self.net.predict(x)
        angle = np.clip(out[:, 0], -1.0, 1.0)
        throttle = np.clip(out[:, 1], -1.0, 1.0)
        return angle, throttle
