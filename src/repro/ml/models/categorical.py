"""KerasCategorical equivalent: 15-way binned steering.

Steering is discretised into 15 bins predicted with softmax +
cross-entropy (more robust to multimodal labels than regression);
throttle keeps a linear regression column.  The combined loss is
``CCE(angle bins) + throttle_weight * MSE(throttle)`` — DonkeyCar's
0.5 angle/throttle loss weighting translated to this two-head layout.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ShapeError
from repro.data.datasets import N_STEERING_BINS, linear_unbin
from repro.ml.layers import Dense, Dropout
from repro.ml.losses import categorical_crossentropy, mse
from repro.ml.models.base import DonkeyModel, default_backbone_layers
from repro.ml.network import Sequential

__all__ = ["CategoricalModel"]


class CategoricalModel(DonkeyModel):
    """Image -> (15-bin steering softmax, linear throttle)."""

    name = "categorical"
    sequence_length = 0
    targets = "categorical"  # y = [15 one-hot columns, throttle]

    def __init__(
        self,
        input_shape: tuple[int, int, int] = (120, 160, 3),
        scale: float = 1.0,
        dropout: float = 0.2,
        seed: int = 0,
        throttle_weight: float = 0.5,
    ) -> None:
        super().__init__(input_shape)
        self.throttle_weight = float(throttle_weight)
        trunk = default_backbone_layers(dropout=dropout, scale=scale, seed=seed, input_shape=input_shape)
        trunk += [
            Dense(max(8, int(100 * scale)), activation="relu"),
            Dropout(dropout, seed=seed + 6),
            Dense(max(4, int(50 * scale)), activation="relu"),
        ]
        self.trunk = Sequential(trunk, input_shape, seed=seed)
        feat = self.trunk.output_shape
        self.angle_head = Sequential(
            [Dense(N_STEERING_BINS, activation="softmax")], feat, seed=seed + 100
        )
        self.throttle_head = Sequential(
            [Dense(1, activation="linear")], feat, seed=seed + 200
        )

    # ------------------------------------------------------------ pass

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        feat = self.trunk.forward(x, training)
        probs = self.angle_head.forward(feat, training)
        throttle = self.throttle_head.forward(feat, training)
        return np.concatenate([probs, throttle], axis=1)

    def compute_loss(self, pred: np.ndarray, y: np.ndarray) -> tuple[float, np.ndarray]:
        if y.shape[1] != N_STEERING_BINS + 1:
            raise ShapeError(
                f"categorical targets must have {N_STEERING_BINS + 1} columns, "
                f"got {y.shape[1]}"
            )
        probs, throttle = pred[:, :N_STEERING_BINS], pred[:, N_STEERING_BINS:]
        bins, t_true = y[:, :N_STEERING_BINS], y[:, N_STEERING_BINS:]
        ce_val, ce_grad = categorical_crossentropy(probs, bins)
        t_val, t_grad = mse(throttle, t_true)
        grad = np.concatenate([ce_grad, self.throttle_weight * t_grad], axis=1)
        return ce_val + self.throttle_weight * t_val, grad.astype(np.float32)

    def backward(self, grad: np.ndarray) -> None:
        g_angle = self.angle_head.backward(grad[:, :N_STEERING_BINS])
        g_throttle = self.throttle_head.backward(grad[:, N_STEERING_BINS:])
        self.trunk.backward(g_angle + g_throttle)

    def fast_forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            feat = self.trunk.training_plan().forward(x)
            probs = self.angle_head.training_plan().forward(feat)
            throttle = self.throttle_head.training_plan().forward(feat)
        else:
            feat = self.trunk.plan().run(x)
            probs = self.angle_head.plan().run(feat)
            throttle = self.throttle_head.plan().run(feat)
        return np.concatenate([probs, throttle], axis=1)

    def fast_backward(self, grad: np.ndarray) -> None:
        g_angle = self.angle_head.training_plan().backward(grad[:, :N_STEERING_BINS])
        g_throttle = self.throttle_head.training_plan().backward(
            grad[:, N_STEERING_BINS:]
        )
        self.trunk.training_plan().backward(g_angle + g_throttle)

    @property
    def params(self) -> list[np.ndarray]:
        return self.trunk.params + self.angle_head.params + self.throttle_head.params

    @property
    def grads(self) -> list[np.ndarray]:
        return self.trunk.grads + self.angle_head.grads + self.throttle_head.grads

    def flops_per_sample(self) -> float:
        """Trunk plus both heads."""
        return (
            self.trunk.flops_per_sample()
            + self.angle_head.flops_per_sample()
            + self.throttle_head.flops_per_sample()
        )

    # ------------------------------------------------------- inference

    def predict_batch(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        feat = self.trunk.predict(x)
        probs = self.angle_head.predict(feat)
        throttle = self.throttle_head.predict(feat)
        angle = linear_unbin(probs)
        return angle, np.clip(throttle[:, 0], -1.0, 1.0)
