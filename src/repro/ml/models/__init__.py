"""The six DonkeyCar autopilot models (paper §3.3)."""

from repro.ml.models.base import DonkeyModel, default_backbone_layers
from repro.ml.models.categorical import CategoricalModel
from repro.ml.models.conv3d import Conv3DModel
from repro.ml.models.factory import MODEL_NAMES, create_model, register_model
from repro.ml.models.inferred import InferredModel
from repro.ml.models.linear import LinearModel
from repro.ml.models.memory import MemoryModel
from repro.ml.models.rnn import RNNModel

__all__ = [
    "DonkeyModel",
    "default_backbone_layers",
    "LinearModel",
    "CategoricalModel",
    "InferredModel",
    "MemoryModel",
    "Conv3DModel",
    "RNNModel",
    "MODEL_NAMES",
    "create_model",
    "register_model",
]
