"""KerasMemory equivalent: image + recent control history.

The memory model conditions on the last ``mem_length`` (angle,
throttle) commands in addition to the current frame — the network
learns temporal smoothness without the cost of sequence convolutions.
Training inputs are ``(images, history)`` tuples; at drive time the
model keeps its own rolling control buffer (seeded with zeros, as the
DonkeyCar part does).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.common.errors import ShapeError
from repro.ml.layers import Dense, Dropout
from repro.ml.models.base import DonkeyModel, default_backbone_layers
from repro.ml.network import Sequential

__all__ = ["MemoryModel"]


class MemoryModel(DonkeyModel):
    """(image, past controls) -> (angle, throttle)."""

    name = "memory"
    sequence_length = 0  # frames are single; history is control-side
    targets = "memory"  # handled by TubDataset.split_memory
    loss_name = "mse"

    def __init__(
        self,
        input_shape: tuple[int, int, int] = (120, 160, 3),
        scale: float = 1.0,
        dropout: float = 0.2,
        seed: int = 0,
        mem_length: int = 3,
    ) -> None:
        super().__init__(input_shape)
        if mem_length < 1:
            raise ShapeError(f"mem_length must be >= 1, got {mem_length}")
        self.mem_length = int(mem_length)
        trunk = default_backbone_layers(dropout=dropout, scale=scale, seed=seed, input_shape=input_shape)
        trunk += [Dense(max(8, int(100 * scale)), activation="relu")]
        self.trunk = Sequential(trunk, input_shape, seed=seed)
        feat_dim = self.trunk.output_shape[0]
        head_in = feat_dim + 2 * self.mem_length
        self.head = Sequential(
            [
                Dense(max(4, int(50 * scale)), activation="relu"),
                Dropout(dropout, seed=seed + 10),
                Dense(2, activation="linear"),
            ],
            (head_in,),
            seed=seed + 300,
        )
        self._feat_dim = feat_dim
        self._control_buffer: deque[tuple[float, float]] = deque(maxlen=self.mem_length)

    # ------------------------------------------------------------ pass

    def forward(
        self, x: tuple[np.ndarray, np.ndarray], training: bool = False
    ) -> np.ndarray:
        images, history = self._unpack(x)
        feat = self.trunk.forward(images, training)
        joined = np.concatenate([feat, history.reshape(len(history), -1)], axis=1)
        return self.head.forward(joined, training)

    def backward(self, grad: np.ndarray) -> None:
        g_joined = self.head.backward(grad)
        self.trunk.backward(g_joined[:, : self._feat_dim])

    def fast_forward(
        self, x: tuple[np.ndarray, np.ndarray], training: bool = False
    ) -> np.ndarray:
        images, history = self._unpack(x)
        if training:
            feat = self.trunk.training_plan().forward(images)
        else:
            feat = self.trunk.plan().run(images)
        joined = np.concatenate([feat, history.reshape(len(history), -1)], axis=1)
        if training:
            return self.head.training_plan().forward(joined)
        return self.head.plan().run(joined)

    def fast_backward(self, grad: np.ndarray) -> None:
        g_joined = self.head.training_plan().backward(grad)
        self.trunk.training_plan().backward(g_joined[:, : self._feat_dim])

    def _unpack(self, x) -> tuple[np.ndarray, np.ndarray]:
        if not (isinstance(x, (tuple, list)) and len(x) == 2):
            raise ShapeError(
                "memory model expects (images, history) input; build it with "
                "TubDataset.split_memory()"
            )
        images, history = x
        history = np.asarray(history, dtype=np.float32)
        if history.reshape(len(history), -1).shape[1] != 2 * self.mem_length:
            raise ShapeError(
                f"history must have {2 * self.mem_length} values per sample, "
                f"got shape {history.shape}"
            )
        return images, history

    @property
    def params(self) -> list[np.ndarray]:
        return self.trunk.params + self.head.params

    @property
    def grads(self) -> list[np.ndarray]:
        return self.trunk.grads + self.head.grads

    def flops_per_sample(self) -> float:
        """Trunk plus head (history concat is free)."""
        return self.trunk.flops_per_sample() + self.head.flops_per_sample()

    # ------------------------------------------------------- inference

    def predict_batch(
        self, x: tuple[np.ndarray, np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        images, history = self._unpack(x)
        feat = self.trunk.predict(images)
        joined = np.concatenate([feat, history.reshape(len(history), -1)], axis=1)
        out = self.head.predict(joined)
        return np.clip(out[:, 0], -1, 1), np.clip(out[:, 1], -1, 1)

    def _serving_batch(self, x: np.ndarray):
        """Serving layout: pair each frame with a zero control history."""
        history = np.zeros((len(x), self.mem_length, 2), dtype=np.float32)
        return (x, history)

    def reset_state(self) -> None:
        super().reset_state()
        self._control_buffer.clear()

    def run(self, image: np.ndarray) -> tuple[float, float]:
        """Drive tick: uses (and updates) the internal control buffer."""
        frame = self._float_frame(image)
        while len(self._control_buffer) < self.mem_length:
            self._control_buffer.append((0.0, 0.0))
        history = np.asarray(self._control_buffer, dtype=np.float32)[None]
        angle, throttle = self.predict_batch((frame[None], history))
        result = float(angle[0]), float(throttle[0])
        self._control_buffer.append(result)
        return result
