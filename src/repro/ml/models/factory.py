"""Model factory: the six tested models by name.

"AutoLearn comes with six tested models, including linear, memory, 3D,
categorical, inferred, and RNN; other models can be also tried, but
they require doing extra configuration" — paper §3.3.  Third-party
models register through :func:`register_model` (the "extra
configuration" path).
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import ConfigurationError
from repro.ml.models.base import DonkeyModel
from repro.ml.models.categorical import CategoricalModel
from repro.ml.models.conv3d import Conv3DModel
from repro.ml.models.inferred import InferredModel
from repro.ml.models.linear import LinearModel
from repro.ml.models.memory import MemoryModel
from repro.ml.models.rnn import RNNModel

__all__ = ["MODEL_NAMES", "create_model", "register_model"]

_REGISTRY: dict[str, Callable[..., DonkeyModel]] = {
    "linear": LinearModel,
    "categorical": CategoricalModel,
    "inferred": InferredModel,
    "memory": MemoryModel,
    "3d": Conv3DModel,
    "rnn": RNNModel,
}

#: The six paper models, in the paper's listing order.
MODEL_NAMES = ("linear", "memory", "3d", "categorical", "inferred", "rnn")


def create_model(name: str, **kwargs) -> DonkeyModel:
    """Instantiate a registered model; kwargs pass to the constructor.

    The constructor ``scale`` (if given) is recorded on the instance so
    serialization can rebuild an identical architecture.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown model {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    model = cls(**kwargs)
    model._scale = kwargs.get("scale", 1.0)
    return model


def register_model(name: str, factory: Callable[..., DonkeyModel]) -> None:
    """Register a custom model type (students' own architectures)."""
    if name in _REGISTRY:
        raise ConfigurationError(f"model {name!r} already registered")
    _REGISTRY[name] = factory
