"""Base class for the six DonkeyCar autopilot models.

"AutoLearn comes with six tested models, including linear, memory, 3D,
categorical, inferred, and RNN" — paper §3.3.  Every model maps camera
frames to ``(angle, throttle)`` and plugs into three surfaces:

* **training** — ``forward`` / ``compute_loss`` / ``backward`` /
  ``params`` / ``grads``, consumed by :class:`repro.ml.training.Trainer`;
* **batch evaluation** — :meth:`predict_batch` on arrays;
* **driving** — :meth:`run`, the DonkeyCar part interface: one uint8
  frame in, one ``(steering, throttle)`` out, with any sequence/memory
  state kept internally (exactly how the Keras parts behave on the Pi).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.common.errors import PlanError, ShapeError
from repro.data.datasets import images_to_float
from repro.ml.layers import Conv2D, Dropout, Flatten
from repro.ml.losses import get_loss
from repro.ml.network import Sequential

__all__ = ["DonkeyModel", "default_backbone_layers"]


def default_backbone_layers(
    dropout: float = 0.2,
    scale: float = 1.0,
    seed: int = 0,
    input_shape: tuple[int, int, int] = (120, 160, 3),
):
    """DonkeyCar's standard 5-conv backbone (``core_cnn_layers``).

    ``scale`` multiplies the filter counts — unit tests shrink the
    network (and input) to keep numpy training fast; the default
    matches DonkeyCar (24/32/64/64/64).  Convolutions that would not
    fit the (possibly shrunken) input are dropped from the tail, so the
    same architecture definition adapts to any test image size.
    """

    def f(n: int) -> int:
        return max(2, int(round(n * scale)))

    specs = [
        (f(24), 5, 2),
        (f(32), 5, 2),
        (f(64), 5, 2),
        (f(64), 3, 1),
        (f(64), 3, 1),
    ]
    layers: list = []
    h, w = input_shape[0], input_shape[1]
    for idx, (filters, k, s) in enumerate(specs):
        if h < k or w < k:
            break
        layers.append(Conv2D(filters, k, s, activation="relu"))
        layers.append(Dropout(dropout, seed=seed + 1 + idx))
        h = (h - k) // s + 1
        w = (w - k) // s + 1
    if not layers:
        raise ShapeError(f"input {input_shape} too small for any conv layer")
    layers.append(Flatten())
    return layers


class DonkeyModel:
    """Common protocol for autopilot models.

    Class attributes
    ----------------
    name:
        Registry key (``"linear"``, ``"rnn"``, ...).
    sequence_length:
        0 for single-frame models; T for sequence models (the training
        loader builds rolling windows of this length).
    targets:
        Label layout requested from
        :meth:`repro.data.datasets.TubDataset.split`.
    """

    name: str = "base"
    sequence_length: int = 0
    targets: str = "both"

    def __init__(self, input_shape: tuple[int, int, int] = (120, 160, 3)) -> None:
        if len(input_shape) != 3 or input_shape[2] != 3:
            raise ShapeError(f"input_shape must be (H, W, 3), got {input_shape}")
        self.input_shape = tuple(int(d) for d in input_shape)
        self._frame_buffer: deque[np.ndarray] = deque(
            maxlen=max(1, self.sequence_length)
        )

    # ------------------------------------------------ training surface

    def forward(self, x, training: bool = False) -> np.ndarray:
        """Training-time forward pass (x layout is model-specific)."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> None:
        """Backpropagate the loss gradient through the model."""
        raise NotImplementedError

    @property
    def params(self) -> list[np.ndarray]:
        raise NotImplementedError

    @property
    def grads(self) -> list[np.ndarray]:
        raise NotImplementedError

    @property
    def n_params(self) -> int:
        """Total trainable scalar count."""
        return sum(p.size for p in self.params)

    loss_name: str = "mse"

    def flops_per_sample(self) -> float:
        """Forward-pass FLOPs per training sample (exact, per layer)."""
        net = getattr(self, "net", None)
        if net is not None:
            return net.flops_per_sample()
        raise NotImplementedError

    def compute_loss(self, pred: np.ndarray, y: np.ndarray) -> tuple[float, np.ndarray]:
        """(loss value, gradient w.r.t. predictions)."""
        return get_loss(self.loss_name)(pred, y)

    def get_weights(self) -> list[np.ndarray]:
        """Copies of all parameters."""
        return [p.copy() for p in self.params]

    def set_weights(self, weights: list[np.ndarray]) -> None:
        """Load parameters in place."""
        params = self.params
        if len(weights) != len(params):
            raise ShapeError(
                f"weight count mismatch: model has {len(params)}, got {len(weights)}"
            )
        for param, weight in zip(params, weights):
            if param.shape != weight.shape:
                raise ShapeError(f"shape mismatch: {param.shape} vs {weight.shape}")
            param[...] = np.asarray(weight, dtype=param.dtype)

    # ---------------------------------------------- compiled fast path

    def _networks(self) -> list[Sequential]:
        """Every ``Sequential`` this model owns (attribute order)."""
        return [v for v in self.__dict__.values() if isinstance(v, Sequential)]

    def compile_plans(self, training: bool = False) -> bool:
        """Compile execution plans for every sub-network ahead of time.

        Returns ``True`` when the whole model runs on the compiled fast
        path, ``False`` when any stack holds a layer without a compiled
        kernel (callers then stay on the reference layers).  Serving
        calls this when a model is pinned to a replica so the first
        request pays no compile/alloc cost.
        """
        nets = self._networks()
        try:
            for net in nets:
                net.plan()
                if training:
                    net.training_plan()
        except PlanError:
            return False
        return bool(nets)

    def supports_fast_path(self) -> bool:
        """True when training can run through the compiled plans."""
        return self.compile_plans(training=True)

    def fast_forward(self, x, training: bool = False) -> np.ndarray:
        """Compiled forward pass (single-backbone default).

        ``training=True`` runs the training plan — dropout on,
        activations cached for :meth:`fast_backward` — and matches the
        reference ``forward`` bit for bit; ``training=False`` runs the
        inference plan (allclose at float32 tolerances).  Models that
        compose several networks override this pair.
        """
        net = getattr(self, "net", None)
        if net is None:
            raise PlanError(f"{type(self).__name__} does not define a fast path")
        if training:
            return net.training_plan().forward(x)
        return net.plan().run(x)

    def fast_backward(self, grad: np.ndarray) -> None:
        """Backprop through the cached ``fast_forward(training=True)``."""
        net = getattr(self, "net", None)
        if net is None:
            raise PlanError(f"{type(self).__name__} does not define a fast path")
        net.training_plan().backward(grad)

    # ---------------------------------------------- evaluation surface

    def predict_batch(self, x) -> tuple[np.ndarray, np.ndarray]:
        """(angles, throttles) for a batch of model-layout inputs."""
        raise NotImplementedError

    def predict_frames(self, frames: np.ndarray) -> np.ndarray:
        """Serving surface: ``(B, H, W, 3)`` frames -> ``(B, 2)`` commands.

        One vectorised forward pass regardless of model family — the
        micro-batching server stacks independent per-vehicle frames, so
        sequence models see each frame tiled into a flat window and the
        memory model a zero control history (the same cold-start
        convention :meth:`run` uses before its buffers fill).  Accepts
        uint8 (converted) or float frames.
        """
        frames = np.asarray(frames)
        if frames.ndim != 4 or frames.shape[1:] != self.input_shape:
            raise ShapeError(
                f"frames must be (B,) + {self.input_shape}, got {frames.shape}"
            )
        if frames.dtype == np.uint8:
            x = images_to_float(frames)
        else:
            x = np.asarray(frames, dtype=np.float32)
        angle, throttle = self.predict_batch(self._serving_batch(x))
        return np.stack(
            [np.asarray(angle), np.asarray(throttle)], axis=1
        ).astype(np.float32)

    def _serving_batch(self, x: np.ndarray):
        """Adapt float frames ``(B, H, W, 3)`` to this model's input layout."""
        if self.sequence_length > 0:
            return np.repeat(x[:, None], self.sequence_length, axis=1)
        return x

    # ------------------------------------------------- driving surface

    def reset_state(self) -> None:
        """Clear sequence/memory buffers (start of a drive)."""
        self._frame_buffer.clear()

    def _float_frame(self, image: np.ndarray) -> np.ndarray:
        if image.shape != self.input_shape:
            raise ShapeError(
                f"frame shape {image.shape} != model input {self.input_shape}"
            )
        if image.dtype == np.uint8:
            return images_to_float(image[None])[0]
        return np.asarray(image, dtype=np.float32)

    def run(self, image: np.ndarray) -> tuple[float, float]:
        """One drive-loop tick: uint8 frame -> (steering, throttle).

        Sequence models replicate the first frame until their buffer
        fills (DonkeyCar behaviour at drive start).
        """
        frame = self._float_frame(image)
        if self.sequence_length > 0:
            while len(self._frame_buffer) < self.sequence_length:
                self._frame_buffer.append(frame)
            self._frame_buffer.append(frame)
            x = np.stack(self._frame_buffer)[None]  # (1, T, H, W, 3)
        else:
            x = frame[None]
        angle, throttle = self.predict_batch(x)
        return float(angle[0]), float(throttle[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(input={self.input_shape}, params={self.n_params})"
