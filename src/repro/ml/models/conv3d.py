"""Keras3D_CNN equivalent: spatio-temporal convolutions.

Consumes a rolling window of frames ``(T, H, W, 3)`` and convolves over
time and space jointly.  The most compute-hungry of the six — the paper
trains it on datacenter GPUs; experiment E2's GPU cost model charges it
the most FLOPs.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.ml.layers import Conv3D, Dense, Dropout, Flatten
from repro.ml.models.base import DonkeyModel
from repro.ml.network import Sequential

__all__ = ["Conv3DModel"]


class Conv3DModel(DonkeyModel):
    """Frame window -> (angle, throttle) via 3-D convolutions."""

    name = "3d"
    sequence_length = 5
    targets = "both"
    loss_name = "mse"

    def __init__(
        self,
        input_shape: tuple[int, int, int] = (120, 160, 3),
        scale: float = 1.0,
        dropout: float = 0.2,
        seed: int = 0,
        sequence_length: int = 5,
    ) -> None:
        super().__init__(input_shape)
        self.sequence_length = int(sequence_length)
        if self.sequence_length < 5:
            raise ValueError("3d model needs sequence_length >= 5 (two kt=3 convs)")
        self._frame_buffer = deque(maxlen=self.sequence_length)

        def f(n: int) -> int:
            return max(2, int(round(n * scale)))

        layers = [
            Conv3D(f(16), (3, 5, 5), (1, 3, 3), activation="relu"),
            Dropout(dropout, seed=seed + 1),
            Conv3D(f(32), (3, 3, 3), (1, 2, 2), activation="relu"),
            Dropout(dropout, seed=seed + 2),
            Flatten(),
            Dense(max(8, int(100 * scale)), activation="relu"),
            Dropout(dropout, seed=seed + 3),
            Dense(2, activation="linear"),
        ]
        self.net = Sequential(
            layers, (self.sequence_length, *input_shape), seed=seed
        )

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.net.forward(x, training)

    def backward(self, grad: np.ndarray) -> None:
        self.net.backward(grad)

    @property
    def params(self) -> list[np.ndarray]:
        return self.net.params

    @property
    def grads(self) -> list[np.ndarray]:
        return self.net.grads

    def predict_batch(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        out = self.net.predict(x, batch_size=32)
        return np.clip(out[:, 0], -1, 1), np.clip(out[:, 1], -1, 1)
