"""KerasInferred equivalent — the paper's winning model.

"we found that the inferred model was best because it gave the car the
ability to speed fast, while still being accurate" — paper §3.3.

The network predicts *steering only*; throttle is **inferred** from the
steering magnitude at drive time: full commanded speed on straights,
slowing proportionally in curves.  Because the whole network capacity
is devoted to one output, steering is typically more accurate than the
two-output linear model, and the inference rule is what lets the car
"speed fast" — exactly the behaviour the paper reports and experiment
E1 reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.ml.layers import Dense, Dropout
from repro.ml.models.base import DonkeyModel, default_backbone_layers
from repro.ml.network import Sequential

__all__ = ["InferredModel"]


class InferredModel(DonkeyModel):
    """Image -> steering; throttle derived from steering magnitude."""

    name = "inferred"
    sequence_length = 0
    targets = "angle"
    loss_name = "mse"

    def __init__(
        self,
        input_shape: tuple[int, int, int] = (120, 160, 3),
        scale: float = 1.0,
        dropout: float = 0.2,
        seed: int = 0,
        max_throttle: float = 0.85,
        min_throttle: float = 0.35,
    ) -> None:
        super().__init__(input_shape)
        if not -1.0 <= min_throttle <= max_throttle <= 1.0:
            raise ConfigurationError(
                f"need -1 <= min_throttle <= max_throttle <= 1, got "
                f"{min_throttle}, {max_throttle}"
            )
        self.max_throttle = float(max_throttle)
        self.min_throttle = float(min_throttle)
        layers = default_backbone_layers(dropout=dropout, scale=scale, seed=seed, input_shape=input_shape)
        layers += [
            Dense(max(8, int(100 * scale)), activation="relu"),
            Dropout(dropout, seed=seed + 6),
            Dense(max(4, int(50 * scale)), activation="relu"),
            Dropout(dropout, seed=seed + 7),
            Dense(1, activation="linear"),
        ]
        self.net = Sequential(layers, input_shape, seed=seed)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.net.forward(x, training)

    def backward(self, grad: np.ndarray) -> None:
        self.net.backward(grad)

    @property
    def params(self) -> list[np.ndarray]:
        return self.net.params

    @property
    def grads(self) -> list[np.ndarray]:
        return self.net.grads

    def infer_throttle(self, angle: np.ndarray) -> np.ndarray:
        """Throttle rule: fast when straight, slower when turning."""
        return self.max_throttle - np.abs(angle) * (
            self.max_throttle - self.min_throttle
        )

    def predict_batch(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        angle = np.clip(self.net.predict(x)[:, 0], -1.0, 1.0)
        return angle, self.infer_throttle(angle)
