"""Compiled execution plans: the fast path for a built ``Sequential``.

The layer stack in :mod:`repro.ml.layers` is the *reference*
implementation — readable, allocation-happy, one Python call per layer
per batch.  This module compiles a built :class:`Sequential` into flat
step programs that run a whole pass with minimal Python dispatch:

* :class:`InferencePlan` — forward only.  Activation buffers are
  preallocated per batch size (re-keyed transparently when the batch
  size changes), convolutions run as a single im2col GEMM over an
  ``as_strided`` patch view copied into a cached column buffer, affine
  + activation kernels are fused in place, and every op is an
  ``out=``-style float32 numpy call.  Output parity with the reference
  stack is *allclose* at float32 tolerances (the GEMM changes the
  accumulation order).
* :class:`TrainingPlan` — forward + backward.  Kernels mirror the
  reference math op-for-op (same operand order, same reductions) while
  writing into preallocated activation/grad workspaces, so a training
  step through the plan produces **identical** post-step weights to the
  reference stack — the parity suite pins this exactly, not just
  approximately.

Plans hold *views* of the layer parameters, so in-place weight updates
(``Sequential.set_weights``, optimizer steps) are visible without
recompiling.  Compiling a stack that contains an unsupported (custom)
layer type raises :class:`~repro.common.errors.PlanError`; callers fall
back to the reference stack.

Arrays returned by ``run``/``forward``/``backward`` are workspace
buffers owned by the plan: they are overwritten by the next call at the
same batch size.  Copy them if they must outlive the next pass.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

try:  # BLAS with beta-accumulation: fuses the conv bias into the GEMM.
    from scipy.linalg.blas import sgemm as _sgemm
except ImportError:  # pragma: no cover - scipy is optional
    _sgemm = None

from repro.common.errors import PlanError, ShapeError
from repro.ml.layers import (
    LSTM,
    Activation,
    Conv2D,
    Conv3D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool2D,
    TimeDistributed,
    _sigmoid,
)

__all__ = ["InferencePlan", "TrainingPlan", "MAX_BATCH_KEYS"]

#: Distinct batch sizes whose workspaces a plan keeps alive (LRU).
MAX_BATCH_KEYS = 16

_F32 = np.float32


# ------------------------------------------------------- activations


def _activate_inplace(name: str, buf: np.ndarray) -> None:
    """Fast fused activation, in place (inference: allclose parity)."""
    if name == "relu":
        np.maximum(buf, 0.0, out=buf)
    elif name == "tanh":
        np.tanh(buf, out=buf)
    elif name == "sigmoid":
        # Stable without the piecewise split: clip first (exp(60) is
        # finite in float64 scratch, the result rounds to 0/1 anyway).
        np.clip(buf, -60.0, 60.0, out=buf)
        np.negative(buf, out=buf)
        np.exp(buf, out=buf)
        buf += 1.0
        np.divide(1.0, buf, out=buf)
    elif name == "softmax":
        m = buf.max(axis=-1, keepdims=True)
        np.subtract(buf, m, out=buf)
        np.exp(buf, out=buf)
        s = buf.sum(axis=-1, keepdims=True)
        np.divide(buf, s, out=buf)
    # linear: nothing to do


def _affine_gemm(cols2: np.ndarray, k2: np.ndarray, b: np.ndarray, out2: np.ndarray) -> None:
    """``out2 = cols2 @ k2 + b`` with the bias fused into the GEMM.

    With scipy's BLAS the broadcast bias becomes the GEMM's ``beta=1``
    accumulator (written via the F-contiguous transpose views), saving
    one full pass over the output.  Falls back to matmul + add.
    """
    if _sgemm is not None and len(cols2):
        out2[:] = b
        _sgemm(1.0, k2.T, cols2.T, beta=1.0, c=out2.T, overwrite_c=1)
    else:
        np.matmul(cols2, k2, out=out2)
        out2 += b


def _activate_mirror(name: str, buf: np.ndarray) -> None:
    """Activation bitwise-identical to ``Activation.forward``, in place."""
    if name == "relu":
        np.maximum(buf, 0.0, out=buf)
    elif name == "tanh":
        np.tanh(buf, out=buf)
    elif name == "sigmoid":
        np.negative(buf, out=buf)
        np.exp(buf, out=buf)
        np.add(buf, 1.0, out=buf)
        np.divide(1.0, buf, out=buf)
    elif name == "softmax":
        m = buf.max(axis=-1, keepdims=True)
        np.subtract(buf, m, out=buf)
        np.exp(buf, out=buf)
        s = buf.sum(axis=-1, keepdims=True)
        np.divide(buf, s, out=buf)


def _act_backward_mirror(
    name: str, grad: np.ndarray, cache: np.ndarray, ws: dict
) -> np.ndarray:
    """Activation backward bitwise-identical to ``Activation.backward``."""
    if name in ("linear", "softmax"):
        return grad
    g = ws["gact"]
    t = ws["tact"]
    if name == "relu":
        np.greater(cache, 0, out=ws["mact"])
        np.multiply(grad, ws["mact"], out=g)
    elif name == "tanh":
        np.power(cache, 2, out=t)
        np.subtract(1.0, t, out=t)
        np.multiply(grad, t, out=g)
    else:  # sigmoid
        np.multiply(grad, cache, out=g)
        np.subtract(1.0, cache, out=t)
        g *= t
    return g


def _act_backward_buffers(name: str | None, shape: tuple[int, ...]) -> dict:
    if name in (None, "linear", "softmax"):
        return {}
    ws = {"gact": np.empty(shape, _F32), "tact": np.empty(shape, _F32)}
    if name == "relu":
        ws["mact"] = np.empty(shape, bool)
    return ws


# -------------------------------------------------------------- steps


class _Step:
    """One compiled layer: allocation + kernels for both plans."""

    #: Batchless input/output shapes, filled by the compiler.
    in_shape: tuple[int, ...]
    out_shape: tuple[int, ...]

    def alloc_infer(self, n: int) -> dict:
        return {}

    def infer(self, x: np.ndarray, ws: dict) -> np.ndarray:
        raise NotImplementedError

    def alloc_train(self, n: int) -> dict:
        return {}

    def train_forward(self, x: np.ndarray, ws: dict) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray, ws: dict) -> np.ndarray:
        raise NotImplementedError


class _DenseStep(_Step):
    def __init__(self, layer: Dense) -> None:
        self.layer = layer
        self.act = layer.activation.name if layer.activation is not None else None

    def alloc_infer(self, n: int) -> dict:
        return {"out": np.empty((n, self.layer.units), _F32)}

    def infer(self, x: np.ndarray, ws: dict) -> np.ndarray:
        out = ws["out"]
        np.matmul(x, self.layer.w, out=out)
        out += self.layer.b
        if self.act is not None:
            _activate_inplace(self.act, out)
        return out

    def alloc_train(self, n: int) -> dict:
        shape = (n, self.layer.units)
        ws = {"out": np.empty(shape, _F32), "dx": np.empty((n, *self.in_shape), _F32)}
        ws.update(_act_backward_buffers(self.act, shape))
        return ws

    def train_forward(self, x: np.ndarray, ws: dict) -> np.ndarray:
        out = ws["out"]
        np.matmul(x, self.layer.w, out=out)
        np.add(out, self.layer.b, out=out)
        if self.act is not None:
            _activate_mirror(self.act, out)
        ws["x"] = x
        return out

    def backward(self, grad: np.ndarray, ws: dict) -> np.ndarray:
        lay = self.layer
        if self.act is not None:
            grad = _act_backward_mirror(self.act, grad, ws["out"], ws)
        np.matmul(ws["x"].T, grad, out=lay.grads[0])
        np.sum(grad, axis=0, out=lay.grads[1])
        return np.matmul(grad, lay.w.T, out=ws["dx"])


class _Conv2DStep(_Step):
    def __init__(self, layer: Conv2D, in_shape: tuple[int, ...]) -> None:
        self.layer = layer
        self.cin = in_shape[2]
        self.oh, self.ow = layer._out_hw(in_shape[0], in_shape[1])
        self.act = layer.activation.name if layer.activation is not None else None
        # Flat (KH*KW*Cin, F) view of the kernel for the im2col GEMM;
        # stays live across in-place weight updates.
        self.k2 = layer.k.reshape(-1, layer.filters)

    def _patch_view(self, x: np.ndarray) -> np.ndarray:
        lay = self.layer
        sn, sh, sw, sc = x.strides
        return as_strided(
            x,
            shape=(len(x), self.oh, self.ow, lay.kh, lay.kw, self.cin),
            strides=(sn, lay.sh * sh, lay.sw * sw, sh, sw, sc),
        )

    def alloc_infer(self, n: int) -> dict:
        lay = self.layer
        cols = np.empty((n, self.oh, self.ow, lay.kh, lay.kw, self.cin), _F32)
        out = np.empty((n, self.oh, self.ow, lay.filters), _F32)
        return {
            "cols": cols,
            "cols2": cols.reshape(n * self.oh * self.ow, -1),
            "out": out,
            "out2": out.reshape(n * self.oh * self.ow, lay.filters),
        }

    def infer(self, x: np.ndarray, ws: dict) -> np.ndarray:
        out = ws["out"]
        np.copyto(ws["cols"], self._patch_view(x))
        _affine_gemm(ws["cols2"], self.k2, self.layer.b, ws["out2"])
        if self.act is not None:
            _activate_inplace(self.act, out)
        return out

    def alloc_train(self, n: int) -> dict:
        lay = self.layer
        shape = (n, self.oh, self.ow, lay.filters)
        ws = {
            "out": np.empty(shape, _F32),
            "tmp_f": np.empty(shape, _F32),
            "tmp_b": np.empty((n, self.oh, self.ow, self.cin), _F32),
            "dx": np.empty((n, *self.in_shape), _F32),
        }
        ws.update(_act_backward_buffers(self.act, shape))
        return ws

    def train_forward(self, x: np.ndarray, ws: dict) -> np.ndarray:
        lay = self.layer
        out = ws["out"]
        tmp = ws["tmp_f"]
        out[:] = lay.b
        for i in range(lay.kh):
            for j in range(lay.kw):
                patch = x[
                    :, i : i + lay.sh * self.oh : lay.sh, j : j + lay.sw * self.ow : lay.sw
                ]
                np.matmul(patch, lay.k[i, j], out=tmp)
                out += tmp
        if self.act is not None:
            _activate_mirror(self.act, out)
        ws["x"] = x
        return out

    def backward(self, grad: np.ndarray, ws: dict) -> np.ndarray:
        lay = self.layer
        if self.act is not None:
            grad = _act_backward_mirror(self.act, grad, ws["out"], ws)
        x = ws["x"]
        grad2 = grad.reshape(-1, lay.filters)
        np.sum(grad2, axis=0, out=lay.grads[1])
        dk = lay.grads[0]
        dx = ws["dx"]
        dx[...] = 0.0
        tmp = ws["tmp_b"]
        for i in range(lay.kh):
            for j in range(lay.kw):
                sl = (
                    slice(None),
                    slice(i, i + lay.sh * self.oh, lay.sh),
                    slice(j, j + lay.sw * self.ow, lay.sw),
                )
                np.matmul(x[sl].reshape(-1, self.cin).T, grad2, out=dk[i, j])
                np.matmul(grad, lay.k[i, j].T, out=tmp)
                dx[sl] += tmp
        return dx


class _Conv3DStep(_Step):
    def __init__(self, layer: Conv3D, in_shape: tuple[int, ...]) -> None:
        self.layer = layer
        self.cin = in_shape[3]
        self.ot, self.oh, self.ow = layer._out_thw(*in_shape[:3])
        self.act = layer.activation.name if layer.activation is not None else None
        self.k2 = layer.k.reshape(-1, layer.filters)

    def _patch_view(self, x: np.ndarray) -> np.ndarray:
        lay = self.layer
        sn, st, sh, sw, sc = x.strides
        return as_strided(
            x,
            shape=(len(x), self.ot, self.oh, self.ow, lay.kt, lay.kh, lay.kw, self.cin),
            strides=(sn, lay.st * st, lay.sh * sh, lay.sw * sw, st, sh, sw, sc),
        )

    def alloc_infer(self, n: int) -> dict:
        lay = self.layer
        rows = n * self.ot * self.oh * self.ow
        cols = np.empty(
            (n, self.ot, self.oh, self.ow, lay.kt, lay.kh, lay.kw, self.cin), _F32
        )
        out = np.empty((n, self.ot, self.oh, self.ow, lay.filters), _F32)
        return {
            "cols": cols,
            "cols2": cols.reshape(rows, -1),
            "out": out,
            "out2": out.reshape(rows, lay.filters),
        }

    def infer(self, x: np.ndarray, ws: dict) -> np.ndarray:
        out = ws["out"]
        np.copyto(ws["cols"], self._patch_view(x))
        _affine_gemm(ws["cols2"], self.k2, self.layer.b, ws["out2"])
        if self.act is not None:
            _activate_inplace(self.act, out)
        return out

    def alloc_train(self, n: int) -> dict:
        lay = self.layer
        shape = (n, self.ot, self.oh, self.ow, lay.filters)
        ws = {
            "out": np.empty(shape, _F32),
            "tmp_f": np.empty(shape, _F32),
            "tmp_b": np.empty((n, self.ot, self.oh, self.ow, self.cin), _F32),
            "dx": np.empty((n, *self.in_shape), _F32),
        }
        ws.update(_act_backward_buffers(self.act, shape))
        return ws

    def _slices(self, a: int, i: int, j: int) -> tuple:
        lay = self.layer
        return (
            slice(None),
            slice(a, a + lay.st * self.ot, lay.st),
            slice(i, i + lay.sh * self.oh, lay.sh),
            slice(j, j + lay.sw * self.ow, lay.sw),
        )

    def train_forward(self, x: np.ndarray, ws: dict) -> np.ndarray:
        lay = self.layer
        out = ws["out"]
        tmp = ws["tmp_f"]
        out[:] = lay.b
        for a in range(lay.kt):
            for i in range(lay.kh):
                for j in range(lay.kw):
                    np.matmul(x[self._slices(a, i, j)], lay.k[a, i, j], out=tmp)
                    out += tmp
        if self.act is not None:
            _activate_mirror(self.act, out)
        ws["x"] = x
        return out

    def backward(self, grad: np.ndarray, ws: dict) -> np.ndarray:
        lay = self.layer
        if self.act is not None:
            grad = _act_backward_mirror(self.act, grad, ws["out"], ws)
        x = ws["x"]
        grad2 = grad.reshape(-1, lay.filters)
        np.sum(grad2, axis=0, out=lay.grads[1])
        dk = lay.grads[0]
        dx = ws["dx"]
        dx[...] = 0.0
        tmp = ws["tmp_b"]
        for a in range(lay.kt):
            for i in range(lay.kh):
                for j in range(lay.kw):
                    sl = self._slices(a, i, j)
                    np.matmul(x[sl].reshape(-1, self.cin).T, grad2, out=dk[a, i, j])
                    np.matmul(grad, lay.k[a, i, j].T, out=tmp)
                    dx[sl] += tmp
        return dx


class _MaxPool2DStep(_Step):
    def __init__(self, layer: MaxPool2D, in_shape: tuple[int, ...]) -> None:
        self.layer = layer
        h, w, c = in_shape
        self.oh, self.ow, self.c = h // layer.ph, w // layer.pw, c

    def _blocks_view(self, x: np.ndarray) -> np.ndarray:
        lay = self.layer
        sn, sh, sw, sc = x.strides
        return as_strided(
            x,
            shape=(len(x), self.oh, lay.ph, self.ow, lay.pw, self.c),
            strides=(sn, lay.ph * sh, sh, lay.pw * sw, sw, sc),
        )

    def alloc_infer(self, n: int) -> dict:
        return {"out": np.empty((n, self.oh, self.ow, self.c), _F32)}

    def infer(self, x: np.ndarray, ws: dict) -> np.ndarray:
        out = ws["out"]
        np.amax(self._blocks_view(x), axis=(2, 4), out=out)
        return out

    def alloc_train(self, n: int) -> dict:
        return {
            "out": np.empty((n, self.oh, self.ow, self.c), _F32),
            "dx": np.empty((n, *self.in_shape), _F32),
        }

    def train_forward(self, x: np.ndarray, ws: dict) -> np.ndarray:
        out = ws["out"]
        blocks = self._blocks_view(x)
        np.amax(blocks, axis=(2, 4), out=out)
        ws["blocks"] = blocks
        return out

    def backward(self, grad: np.ndarray, ws: dict) -> np.ndarray:
        lay = self.layer
        out = ws["out"]
        mask = ws["blocks"] == out[:, :, None, :, None, :]
        counts = mask.sum(axis=(2, 4), keepdims=True)
        dblocks = mask * (grad[:, :, None, :, None, :] / counts)
        dx = ws["dx"]
        dx[...] = 0.0
        n = len(grad)
        dx[:, : self.oh * lay.ph, : self.ow * lay.pw] = dblocks.reshape(
            n, self.oh * lay.ph, self.ow * lay.pw, self.c
        )
        return dx


class _FlattenStep(_Step):
    def infer(self, x: np.ndarray, ws: dict) -> np.ndarray:
        return x.reshape(len(x), -1)

    def train_forward(self, x: np.ndarray, ws: dict) -> np.ndarray:
        ws["shape"] = x.shape
        return x.reshape(len(x), -1)

    def backward(self, grad: np.ndarray, ws: dict) -> np.ndarray:
        return grad.reshape(ws["shape"])


class _DropoutStep(_Step):
    def __init__(self, layer: Dropout) -> None:
        self.layer = layer

    def infer(self, x: np.ndarray, ws: dict) -> np.ndarray:
        return x

    def alloc_train(self, n: int) -> dict:
        shape = (n, *self.in_shape)
        return {"out": np.empty(shape, _F32), "dgrad": np.empty(shape, _F32)}

    def train_forward(self, x: np.ndarray, ws: dict) -> np.ndarray:
        lay = self.layer
        if lay.rate == 0.0:
            ws["mask"] = None
            return x
        keep = 1.0 - lay.rate
        # Same draw, order, and expression as the reference layer so a
        # shared rng stream stays in lockstep with ``Dropout.forward``.
        mask = (lay._rng.random(x.shape) < keep).astype(np.float32) / keep
        ws["mask"] = mask
        return np.multiply(x, mask, out=ws["out"])

    def backward(self, grad: np.ndarray, ws: dict) -> np.ndarray:
        mask = ws["mask"]
        if mask is None:
            return grad
        return np.multiply(grad, mask, out=ws["dgrad"])


class _ActivationStep(_Step):
    def __init__(self, layer: Activation) -> None:
        self.layer = layer
        self.name = layer.name

    def alloc_infer(self, n: int) -> dict:
        if self.name == "linear":
            return {}
        return {"out": np.empty((n, *self.out_shape), _F32)}

    def infer(self, x: np.ndarray, ws: dict) -> np.ndarray:
        if self.name == "linear":
            return x
        out = ws["out"]
        np.copyto(out, x)
        _activate_inplace(self.name, out)
        return out

    def alloc_train(self, n: int) -> dict:
        if self.name == "linear":
            return {}
        shape = (n, *self.out_shape)
        ws = {"out": np.empty(shape, _F32)}
        ws.update(_act_backward_buffers(self.name, shape))
        return ws

    def train_forward(self, x: np.ndarray, ws: dict) -> np.ndarray:
        if self.name == "linear":
            return x
        out = ws["out"]
        np.copyto(out, x)
        _activate_mirror(self.name, out)
        return out

    def backward(self, grad: np.ndarray, ws: dict) -> np.ndarray:
        if self.name == "linear":
            return grad
        return _act_backward_mirror(self.name, grad, ws["out"], ws)


class _TimeDistributedStep(_Step):
    def __init__(self, layer: TimeDistributed, in_shape: tuple[int, ...]) -> None:
        self.layer = layer
        self.t = in_shape[0]
        self.inner = _compile_layer(layer.inner, in_shape[1:])

    def alloc_infer(self, n: int) -> dict:
        return {"inner": self.inner.alloc_infer(n * self.t)}

    def infer(self, x: np.ndarray, ws: dict) -> np.ndarray:
        n = len(x)
        flat = x.reshape(n * self.t, *x.shape[2:])
        out = self.inner.infer(flat, ws["inner"])
        return out.reshape(n, self.t, *out.shape[1:])

    def alloc_train(self, n: int) -> dict:
        return {"inner": self.inner.alloc_train(n * self.t)}

    def train_forward(self, x: np.ndarray, ws: dict) -> np.ndarray:
        n = len(x)
        flat = x.reshape(n * self.t, *x.shape[2:])
        out = self.inner.train_forward(flat, ws["inner"])
        return out.reshape(n, self.t, *out.shape[1:])

    def backward(self, grad: np.ndarray, ws: dict) -> np.ndarray:
        n = len(grad)
        flat = grad.reshape(n * self.t, *grad.shape[2:])
        dx = self.inner.backward(flat, ws["inner"])
        return dx.reshape(n, self.t, *dx.shape[1:])


class _LSTMStep(_Step):
    def __init__(self, layer: LSTM, in_shape: tuple[int, ...]) -> None:
        self.layer = layer
        self.t, self.d = in_shape

    def alloc_infer(self, n: int) -> dict:
        u = self.layer.units
        ws = {
            "zx": np.empty((n * self.t, 4 * u), _F32),
            "z": np.empty((n, 4 * u), _F32),
            "h": np.empty((n, u), _F32),
            "c": np.empty((n, u), _F32),
            "tmp": np.empty((n, u), _F32),
        }
        if self.layer.return_sequences:
            ws["hs"] = np.empty((n, self.t, u), _F32)
        return ws

    def infer(self, x: np.ndarray, ws: dict) -> np.ndarray:
        lay = self.layer
        n = len(x)
        u = lay.units
        zx = ws["zx"]
        np.matmul(x.reshape(n * self.t, self.d), lay.wx, out=zx)
        zx3 = zx.reshape(n, self.t, 4 * u)
        h, c, z, tmp = ws["h"], ws["c"], ws["z"], ws["tmp"]
        h[...] = 0.0
        c[...] = 0.0
        for step in range(self.t):
            np.matmul(h, lay.wh, out=z)
            z += zx3[:, step]
            z += lay.b
            i, f = z[:, :u], z[:, u : 2 * u]
            g, o = z[:, 2 * u : 3 * u], z[:, 3 * u :]
            _activate_inplace("sigmoid", i)
            _activate_inplace("sigmoid", f)
            np.tanh(g, out=g)
            _activate_inplace("sigmoid", o)
            c *= f
            np.multiply(i, g, out=tmp)
            c += tmp
            np.tanh(c, out=tmp)
            np.multiply(o, tmp, out=h)
            if lay.return_sequences:
                ws["hs"][:, step] = h
        return ws["hs"] if lay.return_sequences else h

    def alloc_train(self, n: int) -> dict:
        u = self.layer.units
        t, d = self.t, self.d
        lay = self.layer
        return {
            "hs_all": np.empty((t + 1, n, u), _F32),
            "cs_all": np.empty((t + 1, n, u), _F32),
            "gates": np.empty((t, n, 4 * u), _F32),
            "tanh_cs": np.empty((t, n, u), _F32),
            "hs": np.empty((n, t, u), _F32),
            "z2": np.empty((n, 4 * u), _F32),
            "dz": np.empty((n, 4 * u), _F32),
            "dh": np.empty((n, u), _F32),
            "dh_next": np.empty((n, u), _F32),
            "dc_next": np.empty((n, u), _F32),
            "dc": np.empty((n, u), _F32),
            "do": np.empty((n, u), _F32),
            "di": np.empty((n, u), _F32),
            "df": np.empty((n, u), _F32),
            "dg": np.empty((n, u), _F32),
            "t1": np.empty((n, u), _F32),
            "dx": np.empty((n, t, d), _F32),
            "dxs": np.empty((n, d), _F32),
            "dwx_t": np.empty_like(lay.grads[0]),
            "dwh_t": np.empty_like(lay.grads[1]),
            "db_t": np.empty_like(lay.grads[2]),
        }

    def train_forward(self, x: np.ndarray, ws: dict) -> np.ndarray:
        lay = self.layer
        u = lay.units
        hs_all, cs_all = ws["hs_all"], ws["cs_all"]
        gates, tanh_cs, hs, z2 = ws["gates"], ws["tanh_cs"], ws["hs"], ws["z2"]
        hs_all[0] = 0.0
        cs_all[0] = 0.0
        for step in range(self.t):
            h_prev, c_prev = hs_all[step], cs_all[step]
            z = gates[step]
            np.matmul(x[:, step], lay.wx, out=z)
            np.matmul(h_prev, lay.wh, out=z2)
            z += z2
            z += lay.b
            # Gate activations via the reference's own stable sigmoid so
            # cached values are bitwise identical to ``LSTM.forward``.
            i = _sigmoid(z[:, :u])
            f = _sigmoid(z[:, u : 2 * u])
            g = np.tanh(z[:, 2 * u : 3 * u])
            o = _sigmoid(z[:, 3 * u :])
            z[:, :u] = i
            z[:, u : 2 * u] = f
            z[:, 2 * u : 3 * u] = g
            z[:, 3 * u :] = o
            c_new = cs_all[step + 1]
            np.multiply(f, c_prev, out=c_new)
            np.multiply(i, g, out=ws["t1"])
            c_new += ws["t1"]
            np.tanh(c_new, out=tanh_cs[step])
            np.multiply(o, tanh_cs[step], out=hs_all[step + 1])
            hs[:, step] = hs_all[step + 1]
        ws["x"] = x
        return hs if lay.return_sequences else hs[:, -1]

    def backward(self, grad: np.ndarray, ws: dict) -> np.ndarray:
        lay = self.layer
        u = lay.units
        x = ws["x"]
        dwx, dwh, db = lay.grads
        dwx[...] = 0.0
        dwh[...] = 0.0
        db[...] = 0.0
        dx = ws["dx"]
        dx[...] = 0.0
        dh_next, dc_next = ws["dh_next"], ws["dc_next"]
        dh_next[...] = 0.0
        dc_next[...] = 0.0
        dh, dc, do, di, df, dg = (
            ws["dh"], ws["dc"], ws["do"], ws["di"], ws["df"], ws["dg"],
        )
        dz, t1 = ws["dz"], ws["t1"]
        for step in range(self.t - 1, -1, -1):
            h_prev, c_prev = ws["hs_all"][step], ws["cs_all"][step]
            zg = ws["gates"][step]
            i, f = zg[:, :u], zg[:, u : 2 * u]
            g, o = zg[:, 2 * u : 3 * u], zg[:, 3 * u :]
            tanh_c = ws["tanh_cs"][step]
            np.copyto(dh, dh_next)
            if lay.return_sequences:
                dh += grad[:, step]
            elif step == self.t - 1:
                dh += grad
            np.multiply(dh, tanh_c, out=do)
            # dc = dc_next + dh * o * (1 - tanh_c**2)
            np.multiply(dh, o, out=dc)
            np.power(tanh_c, 2, out=t1)
            np.subtract(1.0, t1, out=t1)
            dc *= t1
            dc += dc_next
            np.multiply(dc, g, out=di)
            np.multiply(dc, c_prev, out=df)
            np.multiply(dc, i, out=dg)
            # dz slots mirror the reference concatenate, slot by slot.
            s = dz[:, :u]
            np.multiply(di, i, out=s)
            np.subtract(1.0, i, out=t1)
            s *= t1
            s = dz[:, u : 2 * u]
            np.multiply(df, f, out=s)
            np.subtract(1.0, f, out=t1)
            s *= t1
            s = dz[:, 2 * u : 3 * u]
            np.power(g, 2, out=t1)
            np.subtract(1.0, t1, out=t1)
            np.multiply(dg, t1, out=s)
            s = dz[:, 3 * u :]
            np.multiply(do, o, out=s)
            np.subtract(1.0, o, out=t1)
            s *= t1
            np.matmul(x[:, step].T, dz, out=ws["dwx_t"])
            dwx += ws["dwx_t"]
            np.matmul(h_prev.T, dz, out=ws["dwh_t"])
            dwh += ws["dwh_t"]
            np.sum(dz, axis=0, out=ws["db_t"])
            db += ws["db_t"]
            np.matmul(dz, lay.wx.T, out=ws["dxs"])
            dx[:, step] = ws["dxs"]
            np.matmul(dz, lay.wh.T, out=dh_next)
            np.multiply(dc, f, out=dc_next)
        return dx


# ----------------------------------------------------------- compiler


def _compile_layer(layer: Layer, in_shape: tuple[int, ...]) -> _Step:
    if not layer.built:
        raise PlanError(f"cannot compile unbuilt layer {type(layer).__name__}")
    if isinstance(layer, Dense):
        step: _Step = _DenseStep(layer)
    elif isinstance(layer, Conv2D):
        step = _Conv2DStep(layer, in_shape)
    elif isinstance(layer, Conv3D):
        step = _Conv3DStep(layer, in_shape)
    elif isinstance(layer, MaxPool2D):
        step = _MaxPool2DStep(layer, in_shape)
    elif isinstance(layer, Flatten):
        step = _FlattenStep()
    elif isinstance(layer, Dropout):
        step = _DropoutStep(layer)
    elif isinstance(layer, TimeDistributed):
        step = _TimeDistributedStep(layer, in_shape)
    elif isinstance(layer, LSTM):
        step = _LSTMStep(layer, in_shape)
    elif isinstance(layer, Activation):
        step = _ActivationStep(layer)
    else:
        raise PlanError(
            f"no compiled kernel for layer type {type(layer).__name__}; "
            "use the reference Sequential stack"
        )
    step.in_shape = in_shape
    step.out_shape = layer.output_shape(in_shape)
    return step


def _compile_steps(
    layers: list[Layer], input_shape: tuple[int, ...]
) -> tuple[list[_Step], tuple[int, ...]]:
    steps = []
    shape = tuple(input_shape)
    for layer in layers:
        step = _compile_layer(layer, shape)
        steps.append(step)
        shape = step.out_shape
    return steps, shape


class _PlanBase:
    """Shared compile + batch-size-keyed workspace management."""

    def __init__(self, layers: list[Layer], input_shape: tuple[int, ...]) -> None:
        self.input_shape = tuple(int(d) for d in input_shape)
        self.steps, self.output_shape = _compile_steps(layers, self.input_shape)
        self._ws: dict[int, list[dict]] = {}

    def _alloc(self, step: _Step, n: int) -> dict:
        raise NotImplementedError

    def _workspaces(self, n: int) -> list[dict]:
        ws = self._ws.pop(n, None)
        if ws is None:
            ws = [self._alloc(step, n) for step in self.steps]
            while len(self._ws) >= MAX_BATCH_KEYS:
                del self._ws[next(iter(self._ws))]
        self._ws[n] = ws  # re-insert: dict order doubles as LRU order
        return ws

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        if tuple(x.shape[1:]) != self.input_shape:
            raise ShapeError(
                f"expected input shape (N, {', '.join(map(str, self.input_shape))}), "
                f"got {x.shape}"
            )
        return np.ascontiguousarray(x, dtype=np.float32)

    @property
    def batch_keys(self) -> tuple[int, ...]:
        """Batch sizes with live workspaces (oldest first)."""
        return tuple(self._ws)


class InferencePlan(_PlanBase):
    """Forward-only compiled program for a built ``Sequential``.

    ``run`` returns a workspace buffer owned by the plan — it is
    overwritten by the next ``run`` at the same batch size.
    """

    def _alloc(self, step: _Step, n: int) -> dict:
        return step.alloc_infer(n)

    def run(self, x: np.ndarray) -> np.ndarray:
        """One whole forward pass with minimal Python dispatch."""
        out = self._check_input(x)
        for step, ws in zip(self.steps, self._workspaces(len(out))):
            out = step.infer(out, ws)
        return out


class TrainingPlan(_PlanBase):
    """Forward+backward compiled program with preallocated grad buffers.

    The kernels mirror the reference layer math op-for-op, so one
    ``forward``/``backward`` pair writes gradients into the *layers'*
    ``grads`` arrays with values identical to the reference stack.
    """

    def __init__(self, layers: list[Layer], input_shape: tuple[int, ...]) -> None:
        super().__init__(layers, input_shape)
        self._last: list[dict] | None = None

    def _alloc(self, step: _Step, n: int) -> dict:
        return step.alloc_train(n)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Training-mode forward; caches activations for ``backward``."""
        out = self._check_input(x)
        ws = self._workspaces(len(out))
        for step, w in zip(self.steps, ws):
            out = step.train_forward(out, w)
        self._last = ws
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward; fills layer grads."""
        if self._last is None:
            raise PlanError("TrainingPlan.backward called before forward")
        for step, w in zip(reversed(self.steps), reversed(self._last)):
            grad = step.backward(grad, w)
        return grad
