"""Optimizers updating parameter arrays in place.

Keras-default hyperparameters; the DonkeyCar training pipeline uses
Adam for every model.  Updates are in-place (``param -= ...``) so the
layers' parameter references stay valid — no reallocation per step
(views, not copies).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import MLError

__all__ = ["Optimizer", "SGD", "Adam", "RMSProp", "get_optimizer"]


class Optimizer:
    """Base optimizer over a flat list of (param, grad) pairs."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise MLError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = float(learning_rate)
        self._state: dict[int, dict[str, np.ndarray]] = {}
        self.iterations = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Apply one update to every parameter."""
        if len(params) != len(grads):
            raise MLError(f"params/grads mismatch: {len(params)} vs {len(grads)}")
        self.iterations += 1
        for slot, (param, grad) in enumerate(zip(params, grads)):
            if param.shape != grad.shape:
                raise MLError(
                    f"param/grad shape mismatch at slot {slot}: "
                    f"{param.shape} vs {grad.shape}"
                )
            self._update(slot, param, grad)

    def _update(self, slot: int, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError

    def _slot_state(self, slot: int, param: np.ndarray, names: list[str]):
        state = self._state.get(slot)
        if state is None:
            state = {name: np.zeros_like(param) for name in names}
            self._state[slot] = state
        return state


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise MLError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)

    def _update(self, slot: int, param: np.ndarray, grad: np.ndarray) -> None:
        if self.momentum == 0.0:
            param -= self.learning_rate * grad
            return
        state = self._slot_state(slot, param, ["velocity"])
        v = state["velocity"]
        v *= self.momentum
        v -= self.learning_rate * grad
        param += v


class Adam(Optimizer):
    """Adam with bias correction (Keras defaults)."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-7,
    ) -> None:
        super().__init__(learning_rate)
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise MLError("betas must be in [0, 1)")
        self.beta1, self.beta2, self.eps = float(beta1), float(beta2), float(eps)

    def _update(self, slot: int, param: np.ndarray, grad: np.ndarray) -> None:
        state = self._slot_state(slot, param, ["m", "v"])
        m, v = state["m"], state["v"]
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad**2
        t = self.iterations
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)


class RMSProp(Optimizer):
    """RMSProp (Keras defaults)."""

    def __init__(
        self, learning_rate: float = 0.001, rho: float = 0.9, eps: float = 1e-7
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= rho < 1.0:
            raise MLError(f"rho must be in [0, 1), got {rho}")
        self.rho, self.eps = float(rho), float(eps)

    def _update(self, slot: int, param: np.ndarray, grad: np.ndarray) -> None:
        state = self._slot_state(slot, param, ["avg"])
        avg = state["avg"]
        avg *= self.rho
        avg += (1.0 - self.rho) * grad**2
        param -= self.learning_rate * grad / (np.sqrt(avg) + self.eps)


_OPTIMIZERS = {"sgd": SGD, "adam": Adam, "rmsprop": RMSProp}


def get_optimizer(name: str, **kwargs) -> Optimizer:
    """Instantiate an optimizer by name."""
    try:
        cls = _OPTIMIZERS[name]
    except KeyError:
        raise MLError(
            f"unknown optimizer {name!r}; known: {sorted(_OPTIMIZERS)}"
        ) from None
    return cls(**kwargs)
