"""Training loop: the ``donkey train`` equivalent.

Mini-batch gradient descent with per-epoch validation, early stopping,
and best-weights checkpointing — the same control flow Keras's
``fit(..., callbacks=[EarlyStopping, ModelCheckpoint])`` gives the
DonkeyCar training command.

The trainer also keeps a FLOP estimate per epoch (from the model's
parameter count and sample count) that the testbed's GPU cost model
(experiment E2) uses to translate "trained the linear model on 10K
records" into seconds on an A100 vs a P100.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import MLError
from repro.common.rng import ensure_rng
from repro.data.datasets import ArraySplit, TubDataset
from repro.ml.models.base import DonkeyModel
from repro.ml.optimizers import Adam, Optimizer

__all__ = ["History", "EarlyStopping", "Trainer", "estimate_flops_per_sample"]


def _x_len(x) -> int:
    return len(x[0]) if isinstance(x, (tuple, list)) else len(x)


def estimate_flops_per_sample(model: DonkeyModel) -> float:
    """Forward+backward FLOPs per training sample.

    Uses the model's exact per-layer forward FLOP count and the
    standard 3x rule (1 forward + 2 backward passes of equivalent
    cost).  Feeds the testbed GPU cost model (experiment E2).
    """
    try:
        forward = model.flops_per_sample()
    except NotImplementedError:
        h, w, _ = model.input_shape
        spatial_reuse = max(1.0, (h * w) / 256.0)
        forward = 2.0 * model.n_params * spatial_reuse
    return 3.0 * forward


@dataclass
class History:
    """Per-epoch training record."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    epochs: int = 0
    stopped_early: bool = False
    best_epoch: int = -1
    best_val_loss: float = float("inf")
    samples_seen: int = 0

    def improved(self, val: float, min_delta: float = 0.0) -> bool:
        """Record an epoch's val loss; True if it beat the best so far."""
        if val < self.best_val_loss - min_delta:
            self.best_val_loss = val
            self.best_epoch = self.epochs
            return True
        return False


@dataclass
class EarlyStopping:
    """Stop after ``patience`` epochs without val-loss improvement."""

    patience: int = 5
    min_delta: float = 0.0
    _stale: int = 0

    def update(self, improved: bool) -> bool:
        """Feed one epoch's result; returns True if training should stop."""
        if improved:
            self._stale = 0
            return False
        self._stale += 1
        return self._stale >= self.patience


class Trainer:
    """Fits a :class:`DonkeyModel` on an :class:`ArraySplit`."""

    def __init__(
        self,
        optimizer: Optimizer | None = None,
        batch_size: int = 64,
        epochs: int = 20,
        early_stopping: EarlyStopping | None = None,
        restore_best_weights: bool = True,
        shuffle_seed: int | np.random.Generator | None = None,
        verbose: bool = False,
        use_plan: bool = True,
    ) -> None:
        if batch_size <= 0 or epochs <= 0:
            raise MLError("batch_size and epochs must be positive")
        self.optimizer = optimizer or Adam()
        self.batch_size = int(batch_size)
        self.epochs = int(epochs)
        self.early_stopping = early_stopping
        self.restore_best_weights = restore_best_weights
        self._rng = ensure_rng(shuffle_seed)
        self.verbose = verbose
        # Train through the compiled plans when the model supports them.
        # The training fast path mirrors the reference math bit for bit
        # (tests/ml/test_plan_parity.py), so this only changes speed.
        self.use_plan = bool(use_plan)

    # ------------------------------------------------------------- fit

    def fit(self, model: DonkeyModel, split: ArraySplit) -> History:
        """Train; returns the history (best weights restored if asked)."""
        history = History()
        best_weights: list[np.ndarray] | None = None
        fast = self.use_plan and model.supports_fast_path()
        for _epoch in range(self.epochs):
            train_loss = self._run_epoch(
                model, split.x_train, split.y_train, fast=fast
            )
            val_loss = self.evaluate(model, split.x_val, split.y_val)
            history.train_loss.append(train_loss)
            history.val_loss.append(val_loss)
            improved = history.improved(
                val_loss,
                self.early_stopping.min_delta if self.early_stopping else 0.0,
            )
            history.epochs += 1
            history.samples_seen += _x_len(split.x_train)
            if improved and self.restore_best_weights:
                best_weights = model.get_weights()
            if self.verbose:  # pragma: no cover - console output
                print(
                    f"epoch {history.epochs:3d}  train={train_loss:.5f}  "
                    f"val={val_loss:.5f}{'  *' if improved else ''}"
                )
            if self.early_stopping and self.early_stopping.update(improved):
                history.stopped_early = True
                break
        if self.restore_best_weights and best_weights is not None:
            model.set_weights(best_weights)
        return history

    def _run_epoch(
        self, model: DonkeyModel, x, y: np.ndarray, fast: bool = False
    ) -> float:
        total, count = 0.0, 0
        for xb, yb in TubDataset.batches(x, y, self.batch_size, rng=self._rng):
            if fast:
                pred = model.fast_forward(xb, training=True)
                loss, grad = model.compute_loss(pred, yb)
                model.fast_backward(grad)
            else:
                pred = model.forward(xb, training=True)
                loss, grad = model.compute_loss(pred, yb)
                model.backward(grad)
            self.optimizer.step(model.params, model.grads)
            n = len(yb)
            total += loss * n
            count += n
        if count == 0:
            raise MLError("empty training set")
        return total / count

    # ------------------------------------------------------- evaluate

    def evaluate(self, model: DonkeyModel, x, y: np.ndarray) -> float:
        """Mean loss over a dataset (inference mode)."""
        fast = self.use_plan and model.compile_plans()
        total, count = 0.0, 0
        for xb, yb in TubDataset.batches(
            x, y, self.batch_size, shuffle=False
        ):
            if fast:
                pred = model.fast_forward(xb, training=False)
            else:
                pred = model.forward(xb, training=False)
            loss, _ = model.compute_loss(pred, yb)
            n = len(yb)
            total += loss * n
            count += n
        if count == 0:
            raise MLError("empty evaluation set")
        return total / count
