"""Evaluation metrics for autopilot models."""

from __future__ import annotations

import numpy as np

from repro.common.errors import ShapeError

__all__ = [
    "mean_squared_error",
    "mean_absolute_error",
    "r2_score",
    "steering_accuracy",
    "categorical_accuracy",
]


def _check(pred: np.ndarray, target: np.ndarray) -> None:
    if pred.shape != target.shape:
        raise ShapeError(f"prediction {pred.shape} vs target {target.shape}")


def mean_squared_error(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error over all elements."""
    _check(pred, target)
    return float(np.mean((pred - target) ** 2))


def mean_absolute_error(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error over all elements."""
    _check(pred, target)
    return float(np.mean(np.abs(pred - target)))


def r2_score(pred: np.ndarray, target: np.ndarray) -> float:
    """Coefficient of determination (1 = perfect, 0 = predict-the-mean)."""
    _check(pred, target)
    ss_res = float(np.sum((target - pred) ** 2))
    ss_tot = float(np.sum((target - target.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def steering_accuracy(
    pred_angle: np.ndarray, true_angle: np.ndarray, tolerance: float = 0.1
) -> float:
    """Fraction of predictions within ``tolerance`` of the true angle.

    The human-interpretable metric used in the module's model
    comparison exercises (a 0.1 tolerance is roughly 3 degrees of wheel
    angle on the PiRacer).
    """
    _check(pred_angle, true_angle)
    if tolerance <= 0:
        raise ShapeError(f"tolerance must be positive, got {tolerance}")
    return float(np.mean(np.abs(pred_angle - true_angle) <= tolerance))


def categorical_accuracy(pred_probs: np.ndarray, true_onehot: np.ndarray) -> float:
    """Argmax agreement between predicted and true class distributions."""
    _check(pred_probs, true_onehot)
    return float(
        np.mean(pred_probs.argmax(axis=-1) == true_onehot.argmax(axis=-1))
    )
