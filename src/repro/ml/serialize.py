"""Model serialization: the ``.h5``-file equivalent.

"Students can ... download the trained models onto them for inference"
(§3.3) — trained weights travel from the cloud GPU node to the car's
Raspberry Pi through the object store.  We serialise to a single
``.npz`` payload (architecture descriptor + weight arrays) that can be
written to disk or stored as bytes in :mod:`repro.objectstore`.
"""

from __future__ import annotations

import io
import json
import zipfile
from pathlib import Path
from typing import Any

import numpy as np

from repro.common.errors import SerializationError
from repro.ml.models.base import DonkeyModel

__all__ = ["save_model_bytes", "load_model_bytes", "save_model", "load_model"]

_FORMAT_VERSION = 1


def _architecture(model: DonkeyModel) -> dict[str, Any]:
    spec: dict[str, Any] = {
        "format_version": _FORMAT_VERSION,
        "model": model.name,
        "input_shape": list(model.input_shape),
        "sequence_length": model.sequence_length,
    }
    for attr in ("mem_length", "max_throttle", "min_throttle"):
        if hasattr(model, attr):
            spec[attr] = getattr(model, attr)
    # The constructor scale is recoverable from weight shapes; record it
    # if the model kept it (factory-created models do).
    if hasattr(model, "_scale"):
        spec["scale"] = model._scale
    return spec


def save_model_bytes(model: DonkeyModel) -> bytes:
    """Serialise architecture + weights to an ``.npz`` byte string."""
    buf = io.BytesIO()
    arrays = {f"w{i}": w for i, w in enumerate(model.get_weights())}
    arrays["architecture"] = np.frombuffer(
        json.dumps(_architecture(model)).encode("utf-8"), dtype=np.uint8
    )
    np.savez(buf, **arrays)
    return buf.getvalue()


def load_model_bytes(data: bytes, compile_plans: bool = False) -> DonkeyModel:
    """Rebuild a model from :func:`save_model_bytes` output.

    ``compile_plans=True`` additionally compiles the inference fast
    path before returning (serve/fleet use this when pinning a
    checkpoint to a replica, so the first request pays no compile
    cost).  Plans are compiled from the *loaded* weights and share
    parameter storage with them — identical outputs to a plan compiled
    from the original network.
    """
    from repro.ml.models.factory import create_model  # cycle-free at call time

    try:
        payload = np.load(io.BytesIO(data), allow_pickle=False)
        spec = json.loads(bytes(payload["architecture"]).decode("utf-8"))
    except (OSError, ValueError, KeyError, zipfile.BadZipFile, EOFError) as exc:
        # Everything np.load/json emit for truncated or corrupt payloads.
        raise SerializationError(f"unreadable model payload: {exc}") from exc
    if spec.get("format_version") != _FORMAT_VERSION:
        raise SerializationError(
            f"unsupported model format version: {spec.get('format_version')}"
        )
    kwargs: dict[str, Any] = {"input_shape": tuple(spec["input_shape"])}
    if "scale" in spec:
        kwargs["scale"] = spec["scale"]
    if "mem_length" in spec:
        kwargs["mem_length"] = spec["mem_length"]
    if spec["model"] in ("rnn", "3d") and spec.get("sequence_length"):
        kwargs["sequence_length"] = spec["sequence_length"]
    if "max_throttle" in spec:
        kwargs["max_throttle"] = spec["max_throttle"]
        kwargs["min_throttle"] = spec["min_throttle"]
    model = create_model(spec["model"], **kwargs)
    weights = [payload[f"w{i}"] for i in range(len(payload.files) - 1)]
    model.set_weights(weights)
    if compile_plans:
        model.compile_plans()
    return model


def save_model(model: DonkeyModel, path: str | Path) -> None:
    """Write the model payload to a file."""
    Path(path).write_bytes(save_model_bytes(model))


def load_model(path: str | Path, compile_plans: bool = False) -> DonkeyModel:
    """Read a model payload from a file."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such model file: {path}")
    return load_model_bytes(path.read_bytes(), compile_plans=compile_plans)
