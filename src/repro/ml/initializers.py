"""Weight initializers (Keras-compatible defaults).

DonkeyCar's Keras models rely on Keras defaults: ``glorot_uniform`` for
dense/conv kernels, zeros for biases, ``orthogonal`` for recurrent
kernels.  Reproducing the initial weight *distributions* matters for
matching training dynamics, so these follow the Keras definitions.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import ensure_rng

__all__ = ["glorot_uniform", "he_normal", "orthogonal", "zeros"]


def glorot_uniform(
    shape: tuple[int, ...],
    rng: int | np.random.Generator | None = None,
    fan_in: int | None = None,
    fan_out: int | None = None,
) -> np.ndarray:
    """Uniform(-limit, limit) with limit = sqrt(6 / (fan_in + fan_out)).

    For conv kernels shaped ``(*spatial, in, out)`` the fans include the
    receptive-field size, as in Keras.
    """
    gen = ensure_rng(rng)
    if fan_in is None or fan_out is None:
        receptive = int(np.prod(shape[:-2])) if len(shape) > 2 else 1
        fan_in = receptive * shape[-2] if len(shape) >= 2 else shape[0]
        fan_out = receptive * shape[-1] if len(shape) >= 2 else shape[0]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return gen.uniform(-limit, limit, size=shape).astype(np.float32)


def he_normal(
    shape: tuple[int, ...], rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Normal(0, sqrt(2 / fan_in)) — for ReLU stacks."""
    gen = ensure_rng(rng)
    receptive = int(np.prod(shape[:-2])) if len(shape) > 2 else 1
    fan_in = receptive * shape[-2] if len(shape) >= 2 else shape[0]
    std = np.sqrt(2.0 / fan_in)
    return (gen.standard_normal(shape) * std).astype(np.float32)


def orthogonal(
    shape: tuple[int, int], rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Orthogonal init for recurrent kernels (QR of a Gaussian)."""
    gen = ensure_rng(rng)
    rows, cols = shape
    a = gen.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(a)
    q *= np.sign(np.diag(r))  # uniform over the orthogonal group
    if rows < cols:
        q = q.T
    return q[:rows, :cols].astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero float32 array (bias init)."""
    return np.zeros(shape, dtype=np.float32)
