"""Sequential network container.

The layer-stack equivalent of ``keras.Sequential``: builds layers for a
given input shape, runs forward/backward through the stack, and exposes
flattened parameter/gradient lists for the optimizer.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import PlanError, ShapeError
from repro.common.rng import ensure_rng
from repro.ml.layers import Layer
from repro.ml.plan import InferencePlan, TrainingPlan

__all__ = ["Sequential"]


class Sequential:
    """A linear stack of layers with a fixed input shape."""

    def __init__(
        self,
        layers: list[Layer],
        input_shape: tuple[int, ...],
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not layers:
            raise ShapeError("Sequential needs at least one layer")
        self.layers = list(layers)
        self.input_shape = tuple(int(d) for d in input_shape)
        rng = ensure_rng(seed)
        shape = self.input_shape
        for layer in self.layers:
            if not layer.built:
                layer.build(shape, rng)
            shape = layer.output_shape(shape)
        self.output_shape = shape
        self._plan: InferencePlan | None = None
        self._training_plan: TrainingPlan | None = None

    # ------------------------------------------------------------ plans

    def plan(self) -> InferencePlan:
        """Compiled inference fast path (cached; raises ``PlanError``
        when the stack contains a layer without a compiled kernel)."""
        if self._plan is None:
            self._plan = InferencePlan(self.layers, self.input_shape)
        return self._plan

    def training_plan(self) -> TrainingPlan:
        """Compiled training fast path (cached, reference-exact math)."""
        if self._training_plan is None:
            self._training_plan = TrainingPlan(self.layers, self.input_shape)
        return self._training_plan

    # ------------------------------------------------------------ pass

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the stack; input must match ``input_shape`` (plus batch)."""
        if tuple(x.shape[1:]) != self.input_shape:
            raise ShapeError(
                f"expected input shape (N, {', '.join(map(str, self.input_shape))}), "
                f"got {x.shape}"
            )
        out = np.ascontiguousarray(x, dtype=np.float32)
        for layer in self.layers:
            out = layer.forward(out, training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate the loss gradient; returns grad w.r.t. input."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray, batch_size: int = 128) -> np.ndarray:
        """Inference in mini-batches (no dropout, bounded memory).

        Runs through the compiled :meth:`plan` when the stack supports
        it (falling back to the reference layers otherwise) and always
        returns a fresh array the caller owns.
        """
        try:
            plan = self.plan()
        except PlanError:
            outputs = [
                self.forward(x[lo : lo + batch_size], training=False)
                for lo in range(0, len(x), batch_size)
            ]
            return np.concatenate(outputs) if len(outputs) > 1 else outputs[0]
        n = len(x)
        result = np.empty((n, *self.output_shape), dtype=np.float32)
        for lo in range(0, n, batch_size):
            chunk = plan.run(x[lo : lo + batch_size])
            result[lo : lo + len(chunk)] = chunk
        return result

    # ------------------------------------------------------ parameters

    @property
    def params(self) -> list[np.ndarray]:
        """Flattened trainable parameters (layer order)."""
        return [p for layer in self.layers for p in layer.params]

    @property
    def grads(self) -> list[np.ndarray]:
        """Gradients aligned with :attr:`params`."""
        return [g for layer in self.layers for g in layer.grads]

    @property
    def n_params(self) -> int:
        """Total trainable scalar count."""
        return sum(p.size for p in self.params)

    def get_weights(self) -> list[np.ndarray]:
        """Copies of all parameters (for checkpointing)."""
        return [p.copy() for p in self.params]

    def set_weights(self, weights: list[np.ndarray]) -> None:
        """Load parameters in place (shapes must match)."""
        params = self.params
        if len(weights) != len(params):
            raise ShapeError(
                f"weight count mismatch: model has {len(params)}, got {len(weights)}"
            )
        for param, weight in zip(params, weights):
            if param.shape != weight.shape:
                raise ShapeError(
                    f"weight shape mismatch: {param.shape} vs {weight.shape}"
                )
            param[...] = weight

    def flops_per_sample(self) -> float:
        """Forward-pass FLOPs for one sample (per-layer accounting)."""
        total = 0.0
        shape = self.input_shape
        for layer in self.layers:
            total += layer.flops(shape)
            shape = layer.output_shape(shape)
        return total

    def summary(self) -> str:
        """Human-readable stack description."""
        lines = [f"Sequential(input={self.input_shape})"]
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
            lines.append(
                f"  {type(layer).__name__:<16} out={shape} params={layer.n_params}"
            )
        lines.append(f"  total params: {self.n_params}")
        return "\n".join(lines)
