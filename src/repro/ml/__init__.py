"""numpy neural-network framework (the TensorFlow/Keras substitute).

Layers with explicit backprop, Keras-default initializers/optimizers,
the six DonkeyCar model architectures, a Keras-style training loop, and
``.npz`` model serialization.
"""

from repro.ml import initializers, layers, losses, metrics, optimizers
from repro.ml.models import (
    MODEL_NAMES,
    CategoricalModel,
    Conv3DModel,
    DonkeyModel,
    InferredModel,
    LinearModel,
    MemoryModel,
    RNNModel,
    create_model,
    register_model,
)
from repro.ml.network import Sequential
from repro.ml.optimizers import SGD, Adam, RMSProp, get_optimizer
from repro.ml.plan import InferencePlan, TrainingPlan
from repro.ml.serialize import (
    load_model,
    load_model_bytes,
    save_model,
    save_model_bytes,
)
from repro.ml.training import (
    EarlyStopping,
    History,
    Trainer,
    estimate_flops_per_sample,
)

__all__ = [
    "initializers",
    "layers",
    "losses",
    "metrics",
    "optimizers",
    "Sequential",
    "InferencePlan",
    "TrainingPlan",
    "SGD",
    "Adam",
    "RMSProp",
    "get_optimizer",
    "Trainer",
    "History",
    "EarlyStopping",
    "estimate_flops_per_sample",
    "DonkeyModel",
    "LinearModel",
    "CategoricalModel",
    "InferredModel",
    "MemoryModel",
    "Conv3DModel",
    "RNNModel",
    "MODEL_NAMES",
    "create_model",
    "register_model",
    "save_model",
    "load_model",
    "save_model_bytes",
    "load_model_bytes",
]
