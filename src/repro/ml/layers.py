"""Neural-network layers with explicit forward/backward passes.

A deliberately small, Keras-shaped layer zoo covering everything the
six DonkeyCar models need: Dense, Conv2D, Conv3D, MaxPool2D/3D,
Flatten, Dropout, activations, TimeDistributed, and LSTM.

Convolutions use the *offset-accumulation* formulation instead of
im2col: for each kernel offset the contribution is one large matmul
over a strided **view** of the input (no materialised patch matrix).
With <= 5x5 (x3) kernels that is <= 25 (75) BLAS calls per layer and
no memory blow-up — the "vectorise the inner loop, keep views not
copies" idiom from the HPC guides.

All tensors are float32, batch-first, channels-last (Keras layout).

This stack is the *reference* implementation: clear, allocation-happy,
one Python call per layer.  :mod:`repro.ml.plan` compiles a built stack
into a fast path (im2col GEMM convs, preallocated buffers); its
training kernels mirror this module's math op-for-op, pinned by the
parity suite in ``tests/ml/test_plan_parity.py``.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ShapeError
from repro.common.rng import ensure_rng
from repro.ml.initializers import glorot_uniform, orthogonal, zeros

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "Conv3D",
    "MaxPool2D",
    "Flatten",
    "Dropout",
    "Activation",
    "TimeDistributed",
    "LSTM",
]


class Layer:
    """Base layer: stateful forward/backward with parameter lists."""

    def __init__(self) -> None:
        self.params: list[np.ndarray] = []
        self.grads: list[np.ndarray] = []
        self.built = False

    # Subclasses override these three.
    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:  # reprolint: disable=seed-ignored  (parameterless base layer; weighted subclasses draw from rng)
        """Allocate parameters for the (batchless) ``input_shape``."""
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Batchless output shape for a batchless input shape."""
        return input_shape

    def flops(self, input_shape: tuple[int, ...]) -> float:
        """Forward-pass FLOPs per sample (default: 2 per parameter)."""
        return 2.0 * self.n_params

    @property
    def n_params(self) -> int:
        """Total trainable scalar count."""
        return sum(p.size for p in self.params)

    def _check_built(self) -> None:
        if not self.built:
            raise ShapeError(f"{type(self).__name__} used before build()")


# ------------------------------------------------------------- dense


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(self, units: int, activation: str | None = None) -> None:
        super().__init__()
        if units <= 0:
            raise ShapeError(f"units must be positive, got {units}")
        self.units = units
        self.activation = Activation(activation) if activation else None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 1:
            raise ShapeError(f"Dense expects flat input, got shape {input_shape}")
        self.w = glorot_uniform((input_shape[0], self.units), rng)
        self.b = zeros((self.units,))
        self.params = [self.w, self.b]
        self.grads = [np.zeros_like(self.w), np.zeros_like(self.b)]
        self.built = True

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (self.units,)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_built()
        self._x = x
        out = x @ self.w + self.b
        if self.activation is not None:
            out = self.activation.forward(out, training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self.activation is not None:
            grad = self.activation.backward(grad)
        self.grads[0][...] = self._x.T @ grad
        self.grads[1][...] = grad.sum(axis=0)
        return grad @ self.w.T


# ------------------------------------------------------ convolutions


class Conv2D(Layer):
    """2-D convolution, 'valid' padding, channels-last.

    Kernel shape ``(KH, KW, Cin, Cout)``.
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int | tuple[int, int],
        strides: int | tuple[int, int] = 1,
        activation: str | None = None,
    ) -> None:
        super().__init__()
        self.filters = int(filters)
        self.kh, self.kw = (
            (kernel_size, kernel_size) if isinstance(kernel_size, int) else kernel_size
        )
        self.sh, self.sw = (strides, strides) if isinstance(strides, int) else strides
        if min(self.kh, self.kw, self.sh, self.sw, self.filters) <= 0:
            raise ShapeError("kernel size, stride, and filters must be positive")
        self.activation = Activation(activation) if activation else None

    def _out_hw(self, h: int, w: int) -> tuple[int, int]:
        oh = (h - self.kh) // self.sh + 1
        ow = (w - self.kw) // self.sw + 1
        if oh <= 0 or ow <= 0:
            raise ShapeError(
                f"Conv2D kernel ({self.kh}x{self.kw}) larger than input ({h}x{w})"
            )
        return oh, ow

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 3:
            raise ShapeError(f"Conv2D expects (H, W, C) input, got {input_shape}")
        cin = input_shape[2]
        self.k = glorot_uniform((self.kh, self.kw, cin, self.filters), rng)
        self.b = zeros((self.filters,))
        self.params = [self.k, self.b]
        self.grads = [np.zeros_like(self.k), np.zeros_like(self.b)]
        self.built = True

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        oh, ow = self._out_hw(input_shape[0], input_shape[1])
        return (oh, ow, self.filters)

    def flops(self, input_shape: tuple[int, ...]) -> float:
        oh, ow = self._out_hw(input_shape[0], input_shape[1])
        cin = input_shape[2]
        return 2.0 * self.kh * self.kw * cin * self.filters * oh * ow

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_built()
        n, h, w, cin = x.shape
        oh, ow = self._out_hw(h, w)
        self._x = x
        self._oh, self._ow = oh, ow
        out = np.empty((n, oh, ow, self.filters), dtype=np.float32)
        out[:] = self.b
        for i in range(self.kh):
            for j in range(self.kw):
                patch = x[:, i : i + self.sh * oh : self.sh, j : j + self.sw * ow : self.sw]
                out += patch @ self.k[i, j]
        if self.activation is not None:
            out = self.activation.forward(out, training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self.activation is not None:
            grad = self.activation.backward(grad)
        x = self._x
        n, h, w, cin = x.shape
        oh, ow = self._oh, self._ow
        grad2 = grad.reshape(-1, self.filters)
        self.grads[1][...] = grad2.sum(axis=0)
        dk = self.grads[0]
        dk[...] = 0.0
        dx = np.zeros_like(x)
        for i in range(self.kh):
            for j in range(self.kw):
                patch = x[:, i : i + self.sh * oh : self.sh, j : j + self.sw * ow : self.sw]
                dk[i, j] = patch.reshape(-1, cin).T @ grad2
                dx[:, i : i + self.sh * oh : self.sh, j : j + self.sw * ow : self.sw] += (
                    grad @ self.k[i, j].T
                )
        return dx


class Conv3D(Layer):
    """3-D convolution over (T, H, W, C), 'valid' padding.

    Used by the DonkeyCar ``3d`` model; kernel shape
    ``(KT, KH, KW, Cin, Cout)``.
    """

    def __init__(
        self,
        filters: int,
        kernel_size: tuple[int, int, int],
        strides: tuple[int, int, int] = (1, 1, 1),
        activation: str | None = None,
    ) -> None:
        super().__init__()
        self.filters = int(filters)
        self.kt, self.kh, self.kw = kernel_size
        self.st, self.sh, self.sw = strides
        if min(self.kt, self.kh, self.kw, self.st, self.sh, self.sw, filters) <= 0:
            raise ShapeError("kernel size, stride, and filters must be positive")
        self.activation = Activation(activation) if activation else None

    def _out_thw(self, t: int, h: int, w: int) -> tuple[int, int, int]:
        ot = (t - self.kt) // self.st + 1
        oh = (h - self.kh) // self.sh + 1
        ow = (w - self.kw) // self.sw + 1
        if min(ot, oh, ow) <= 0:
            raise ShapeError(
                f"Conv3D kernel ({self.kt}x{self.kh}x{self.kw}) larger than "
                f"input ({t}x{h}x{w})"
            )
        return ot, oh, ow

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 4:
            raise ShapeError(f"Conv3D expects (T, H, W, C) input, got {input_shape}")
        cin = input_shape[3]
        self.k = glorot_uniform((self.kt, self.kh, self.kw, cin, self.filters), rng)
        self.b = zeros((self.filters,))
        self.params = [self.k, self.b]
        self.grads = [np.zeros_like(self.k), np.zeros_like(self.b)]
        self.built = True

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        ot, oh, ow = self._out_thw(*input_shape[:3])
        return (ot, oh, ow, self.filters)

    def flops(self, input_shape: tuple[int, ...]) -> float:
        ot, oh, ow = self._out_thw(*input_shape[:3])
        cin = input_shape[3]
        return 2.0 * self.kt * self.kh * self.kw * cin * self.filters * ot * oh * ow

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_built()
        n, t, h, w, cin = x.shape
        ot, oh, ow = self._out_thw(t, h, w)
        self._x = x
        self._othw = (ot, oh, ow)
        out = np.empty((n, ot, oh, ow, self.filters), dtype=np.float32)
        out[:] = self.b
        for a in range(self.kt):
            for i in range(self.kh):
                for j in range(self.kw):
                    patch = x[
                        :,
                        a : a + self.st * ot : self.st,
                        i : i + self.sh * oh : self.sh,
                        j : j + self.sw * ow : self.sw,
                    ]
                    out += patch @ self.k[a, i, j]
        if self.activation is not None:
            out = self.activation.forward(out, training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self.activation is not None:
            grad = self.activation.backward(grad)
        x = self._x
        ot, oh, ow = self._othw
        cin = x.shape[-1]
        grad2 = grad.reshape(-1, self.filters)
        self.grads[1][...] = grad2.sum(axis=0)
        dk = self.grads[0]
        dk[...] = 0.0
        dx = np.zeros_like(x)
        for a in range(self.kt):
            for i in range(self.kh):
                for j in range(self.kw):
                    sl = (
                        slice(None),
                        slice(a, a + self.st * ot, self.st),
                        slice(i, i + self.sh * oh, self.sh),
                        slice(j, j + self.sw * ow, self.sw),
                    )
                    dk[a, i, j] = x[sl].reshape(-1, cin).T @ grad2
                    dx[sl] += grad @ self.k[a, i, j].T
        return dx


class MaxPool2D(Layer):
    """Non-overlapping max pooling (pool size == stride)."""

    def __init__(self, pool_size: int | tuple[int, int] = 2) -> None:
        super().__init__()
        self.ph, self.pw = (
            (pool_size, pool_size) if isinstance(pool_size, int) else pool_size
        )
        if min(self.ph, self.pw) <= 0:
            raise ShapeError("pool size must be positive")
        self.built = True

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        h, w, c = input_shape
        return (h // self.ph, w // self.pw, c)

    def flops(self, input_shape: tuple[int, ...]) -> float:
        return 0.0

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, h, w, c = x.shape
        oh, ow = h // self.ph, w // self.pw
        trimmed = x[:, : oh * self.ph, : ow * self.pw]
        blocks = trimmed.reshape(n, oh, self.ph, ow, self.pw, c)
        out = blocks.max(axis=(2, 4))
        self._x_shape = x.shape
        self._blocks = blocks
        self._out = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, h, w, c = self._x_shape
        oh, ow = h // self.ph, w // self.pw
        mask = self._blocks == self._out[:, :, None, :, None, :]
        counts = mask.sum(axis=(2, 4), keepdims=True)
        dblocks = mask * (grad[:, :, None, :, None, :] / counts)
        dx = np.zeros(self._x_shape, dtype=grad.dtype)
        dx[:, : oh * self.ph, : ow * self.pw] = dblocks.reshape(
            n, oh * self.ph, ow * self.pw, c
        )
        return dx


# ---------------------------------------------------------- reshaping


class Flatten(Layer):
    """Collapse all non-batch dimensions."""

    def __init__(self) -> None:
        super().__init__()
        self.built = True

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (int(np.prod(input_shape)),)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(len(x), -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout; identity at inference."""

    def __init__(self, rate: float, seed: int | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ShapeError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = ensure_rng(seed)
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (
            self._rng.random(x.shape) < keep
        ).astype(np.float32) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad if self._mask is None else grad * self._mask


# --------------------------------------------------------- activation


class Activation(Layer):
    """Elementwise activation: relu, tanh, sigmoid, linear, softmax.

    Softmax assumes it feeds a categorical cross-entropy whose
    ``backward`` provides the combined (logits) gradient, so its local
    backward is the identity — the standard fused formulation.
    """

    KNOWN = ("relu", "tanh", "sigmoid", "linear", "softmax")

    def __init__(self, name: str | None) -> None:
        super().__init__()
        name = name or "linear"
        if name not in self.KNOWN:
            raise ShapeError(f"unknown activation {name!r}; known: {self.KNOWN}")
        self.name = name
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if self.name == "relu":
            out = np.maximum(x, 0.0)
            self._cache = out
        elif self.name == "tanh":
            out = np.tanh(x)
            self._cache = out
        elif self.name == "sigmoid":
            out = 1.0 / (1.0 + np.exp(-x))
            self._cache = out
        elif self.name == "softmax":
            shifted = x - x.max(axis=-1, keepdims=True)
            e = np.exp(shifted)
            out = e / e.sum(axis=-1, keepdims=True)
            self._cache = out
        else:  # linear
            out = x
            self._cache = None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self.name == "relu":
            return grad * (self._cache > 0)
        if self.name == "tanh":
            return grad * (1.0 - self._cache**2)
        if self.name == "sigmoid":
            return grad * self._cache * (1.0 - self._cache)
        # linear and (fused) softmax
        return grad


# --------------------------------------------------------- sequences


class TimeDistributed(Layer):
    """Apply an inner layer independently at every timestep.

    Implemented by folding time into the batch axis — a reshape view,
    no copies — exactly how Keras implements it.
    """

    def __init__(self, inner: Layer) -> None:
        super().__init__()
        self.inner = inner

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        self.inner.build(input_shape[1:], rng)
        self.params = self.inner.params
        self.grads = self.inner.grads
        self.built = True

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (input_shape[0], *self.inner.output_shape(input_shape[1:]))

    def flops(self, input_shape: tuple[int, ...]) -> float:
        return input_shape[0] * self.inner.flops(input_shape[1:])

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, t = x.shape[:2]
        self._nt = (n, t)
        flat = x.reshape(n * t, *x.shape[2:])
        out = self.inner.forward(flat, training)
        return out.reshape(n, t, *out.shape[1:])

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, t = self._nt
        flat = grad.reshape(n * t, *grad.shape[2:])
        dx = self.inner.backward(flat)
        return dx.reshape(n, t, *dx.shape[1:])


class LSTM(Layer):
    """Single-layer LSTM; returns the last hidden state or the sequence.

    Gate order (i, f, g, o) packed in one kernel, as in Keras.  Forget
    bias initialised to 1 (``unit_forget_bias=True``).
    """

    def __init__(self, units: int, return_sequences: bool = False) -> None:
        super().__init__()
        if units <= 0:
            raise ShapeError(f"units must be positive, got {units}")
        self.units = units
        self.return_sequences = return_sequences

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 2:
            raise ShapeError(f"LSTM expects (T, features) input, got {input_shape}")
        d, u = input_shape[1], self.units
        self.wx = glorot_uniform((d, 4 * u), rng)
        self.wh = orthogonal((u, 4 * u), rng)
        self.b = zeros((4 * u,))
        self.b[u : 2 * u] = 1.0  # forget-gate bias
        self.params = [self.wx, self.wh, self.b]
        self.grads = [np.zeros_like(self.wx), np.zeros_like(self.wh), np.zeros_like(self.b)]
        self.built = True

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if self.return_sequences:
            return (input_shape[0], self.units)
        return (self.units,)

    def flops(self, input_shape: tuple[int, ...]) -> float:
        t, d = input_shape
        return t * 2.0 * 4 * self.units * (d + self.units)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_built()
        n, t, d = x.shape
        u = self.units
        h = np.zeros((n, u), dtype=np.float32)
        c = np.zeros((n, u), dtype=np.float32)
        self._x = x
        self._cache = []
        hs = np.empty((n, t, u), dtype=np.float32)
        for step in range(t):
            z = x[:, step] @ self.wx + h @ self.wh + self.b
            i = _sigmoid(z[:, :u])
            f = _sigmoid(z[:, u : 2 * u])
            g = np.tanh(z[:, 2 * u : 3 * u])
            o = _sigmoid(z[:, 3 * u :])
            c_new = f * c + i * g
            tanh_c = np.tanh(c_new)
            h_new = o * tanh_c
            self._cache.append((h, c, i, f, g, o, tanh_c))
            h, c = h_new, c_new
            hs[:, step] = h
        self._hs = hs
        return hs if self.return_sequences else hs[:, -1]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x = self._x
        n, t, d = x.shape
        u = self.units
        dwx, dwh, db = self.grads
        dwx[...] = 0.0
        dwh[...] = 0.0
        db[...] = 0.0
        dx = np.zeros_like(x)
        dh_next = np.zeros((n, u), dtype=np.float32)
        dc_next = np.zeros((n, u), dtype=np.float32)
        for step in range(t - 1, -1, -1):
            h_prev, c_prev, i, f, g, o, tanh_c = self._cache[step]
            dh = dh_next.copy()
            if self.return_sequences:
                dh += grad[:, step]
            elif step == t - 1:
                dh += grad
            do = dh * tanh_c
            dc = dc_next + dh * o * (1.0 - tanh_c**2)
            di = dc * g
            df = dc * c_prev
            dg = dc * i
            dz = np.concatenate(
                [
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    dg * (1.0 - g**2),
                    do * o * (1.0 - o),
                ],
                axis=1,
            )
            dwx += x[:, step].T @ dz
            dwh += h_prev.T @ dz
            db += dz.sum(axis=0)
            dx[:, step] = dz @ self.wx.T
            dh_next = dz @ self.wh.T
            dc_next = dc * f
        return dx


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Numerically stable piecewise sigmoid.
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out
