"""Loss functions: value plus gradient w.r.t. predictions.

Each loss returns ``(value, grad)`` where ``grad`` is the gradient of
the *mean* loss over the batch — ready to feed the network's backward
pass.  The categorical cross-entropy assumes the model's final softmax
was applied (fused formulation, see
:class:`repro.ml.layers.Activation`).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ShapeError

__all__ = ["mse", "mae", "huber", "categorical_crossentropy", "get_loss"]


def _check(pred: np.ndarray, target: np.ndarray) -> None:
    if pred.shape != target.shape:
        raise ShapeError(f"prediction {pred.shape} vs target {target.shape}")


def mse(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error (the DonkeyCar regression default)."""
    _check(pred, target)
    diff = pred - target
    value = float(np.mean(diff**2))
    grad = (2.0 / diff.size) * diff
    return value, grad.astype(np.float32)


def mae(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean absolute error."""
    _check(pred, target)
    diff = pred - target
    value = float(np.mean(np.abs(diff)))
    grad = np.sign(diff) / diff.size
    return value, grad.astype(np.float32)


def huber(
    pred: np.ndarray, target: np.ndarray, delta: float = 1.0
) -> tuple[float, np.ndarray]:
    """Huber loss (quadratic near zero, linear in the tails)."""
    _check(pred, target)
    diff = pred - target
    absd = np.abs(diff)
    quad = absd <= delta
    value = float(
        np.mean(np.where(quad, 0.5 * diff**2, delta * (absd - 0.5 * delta)))
    )
    grad = np.where(quad, diff, delta * np.sign(diff)) / diff.size
    return value, grad.astype(np.float32)


def categorical_crossentropy(
    pred: np.ndarray, target: np.ndarray, eps: float = 1e-7
) -> tuple[float, np.ndarray]:
    """Cross-entropy over softmax outputs with the fused gradient.

    ``pred`` must be the softmax probabilities; the returned gradient
    is w.r.t. the *logits* (``(p - t) / N``), which is why the softmax
    activation backpropagates identity.
    """
    _check(pred, target)
    clipped = np.clip(pred, eps, 1.0)
    value = float(-np.mean(np.sum(target * np.log(clipped), axis=-1)))
    grad = (pred - target) / len(pred)
    return value, grad.astype(np.float32)


_LOSSES = {
    "mse": mse,
    "mae": mae,
    "huber": huber,
    "categorical_crossentropy": categorical_crossentropy,
}


def get_loss(name: str):
    """Look up a loss function by name."""
    try:
        return _LOSSES[name]
    except KeyError:
        raise ShapeError(
            f"unknown loss {name!r}; known: {sorted(_LOSSES)}"
        ) from None
