"""Multi-vehicle drive scenarios: trajectories for tracking-grade scoring.

A ``drive`` scenario puts N scripted students on one track (phase-
staggered around the centreline), ticks them in lockstep on the run's
:class:`~repro.common.clock.EventScheduler`, and records two aligned
frame sequences:

* ground truth — each vehicle's true position per tick;
* tracker output — the estimates of :class:`GreedyTracker`, a small
  nearest-neighbour perception tracker fed seeded noisy detections
  (position noise, dropouts), which is the *system under evaluation*
  for the MOT-style metrics in :mod:`repro.eval.mot`.

Driving quality (lap times, cross-track error, crashes) comes straight
from the sessions.  Everything is a pure function of the spec params
and the seed: per-vehicle dynamics, student noise, disturbance, and
perception noise all draw from ``seed_from_name`` streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng, seed_from_name
from repro.sim.session import LapStats

__all__ = ["GreedyTracker", "DriveArtifacts", "run_drive"]


class GreedyTracker:
    """Nearest-neighbour tracker over noisy, dropout-prone detections.

    Detections within ``gate_m`` of a live track update it; leftover
    detections spawn new track ids; a track missing for more than
    ``max_coast`` consecutive frames is retired.  Deliberately naive —
    dropouts and crossings produce the identity switches the MOT
    metrics exist to measure.
    """

    def __init__(
        self,
        noise_m: float = 0.06,
        dropout: float = 0.04,
        gate_m: float = 0.8,
        max_coast: int = 3,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if noise_m < 0 or gate_m <= 0:
            raise ConfigurationError("noise_m must be >= 0 and gate_m > 0")
        if not 0.0 <= dropout < 1.0:
            raise ConfigurationError(f"dropout must be in [0, 1), got {dropout}")
        if max_coast < 0:
            raise ConfigurationError(f"max_coast must be >= 0, got {max_coast}")
        self.noise_m = float(noise_m)
        self.dropout = float(dropout)
        self.gate_m = float(gate_m)
        self.max_coast = int(max_coast)
        self._rng = ensure_rng(seed)
        self._tracks: dict[str, list] = {}  # id -> [x, y, missed_frames]
        self.spawned = 0
        self.detections = 0

    def observe(self, gt_frame: dict[str, tuple[float, float]]) -> dict:
        """Ingest one ground-truth frame; return ``{track_id: (x, y)}``."""
        detections: list[tuple[float, float]] = []
        for obj_id in sorted(gt_frame):
            if self.dropout and self._rng.random() < self.dropout:
                continue
            x, y = gt_frame[obj_id]
            if self.noise_m:
                dx, dy = self._rng.normal(0.0, self.noise_m, 2)
                x, y = x + float(dx), y + float(dy)
            detections.append((x, y))
            self.detections += 1
        candidates = sorted(
            (
                (math.hypot(x - track[0], y - track[1]), track_id, index)
                for track_id, track in self._tracks.items()
                for index, (x, y) in enumerate(detections)
            ),
        )
        matched_tracks: set[str] = set()
        matched_detections: set[int] = set()
        output: dict[str, tuple[float, float]] = {}
        for distance, track_id, index in candidates:
            if distance > self.gate_m:
                break
            if track_id in matched_tracks or index in matched_detections:
                continue
            matched_tracks.add(track_id)
            matched_detections.add(index)
            track = self._tracks[track_id]
            track[0], track[1] = detections[index]
            track[2] = 0
            output[track_id] = detections[index]
        for index, position in enumerate(detections):
            if index in matched_detections:
                continue
            self.spawned += 1
            track_id = f"trk-{self.spawned:04d}"
            self._tracks[track_id] = [position[0], position[1], 0]
            output[track_id] = position
        for track_id in sorted(set(self._tracks) - matched_tracks - set(output)):
            track = self._tracks[track_id]
            track[2] += 1
            if track[2] > self.max_coast:
                del self._tracks[track_id]
        return output


@dataclass
class DriveArtifacts:
    """Everything the evaluator needs from one drive run."""

    track_name: str
    n_vehicles: int
    ticks: int
    dt: float
    lap_stats: list[LapStats] = field(default_factory=list)
    cte_values: list[float] = field(default_factory=list)
    gt_frames: list[dict] = field(default_factory=list)
    tracked_frames: list[dict] = field(default_factory=list)
    match_radius_m: float = 0.5
    detections: int = 0
    tracks_spawned: int = 0


def run_drive(
    name: str,
    params: dict,
    seed: int,
    scheduler,
    tracer,
    metrics,
) -> tuple[str, DriveArtifacts]:
    """Run one drive scenario; returns (summary text, artifacts)."""
    from repro.core.drivers import PurePursuitDriver, StudentDriver
    from repro.sim.server import make_track
    from repro.sim.session import DrivingSession

    track_name = str(params.get("track", "default-tape-oval"))
    track = make_track(track_name)
    n_vehicles = int(params.get("n_vehicles", 4))
    ticks = int(params.get("ticks", 240))
    dt = float(params.get("dt", 0.05))
    skill = float(params.get("skill", 0.85))
    noise_amp = float(params.get("steering_noise", 0.0))
    perception = dict(params.get("perception", {}))
    if n_vehicles < 1 or ticks < 1:
        raise ConfigurationError("need >= 1 vehicle and >= 1 tick")

    sessions = []
    drivers = []
    for index in range(n_vehicles):
        session = DrivingSession(
            track,
            dt=dt,
            render=False,
            seed=seed_from_name(f"drive-veh-{index:04d}", seed),
        )
        last = session.reset(s=track.length * index / n_vehicles)
        expert = PurePursuitDriver(session)
        driver = StudentDriver(
            expert,
            skill=skill,
            rng=seed_from_name(f"drive-skill-{index:04d}", seed),
        )
        sessions.append([session, last])
        drivers.append(driver)
    disturbance = ensure_rng(seed_from_name("drive-disturbance", seed))
    tracker = GreedyTracker(
        noise_m=float(perception.get("noise_m", 0.06)),
        dropout=float(perception.get("dropout", 0.04)),
        gate_m=float(perception.get("gate_m", 0.8)),
        max_coast=int(perception.get("max_coast", 3)),
        seed=seed_from_name("drive-perception", seed),
    )
    artifacts = DriveArtifacts(
        track_name=track_name,
        n_vehicles=n_vehicles,
        ticks=ticks,
        dt=dt,
        match_radius_m=float(perception.get("match_radius_m", 0.5)),
    )

    def tick() -> None:
        frame_gt: dict[str, tuple[float, float]] = {}
        for index, (slot, driver) in enumerate(zip(sessions, drivers)):
            session, obs = slot
            steering, throttle = driver(obs.image, obs.cte, obs.speed)
            if noise_amp:
                steering = float(
                    np.clip(steering + noise_amp * disturbance.normal(), -1.0, 1.0)
                )
            obs = session.step(steering, throttle)
            slot[1] = obs
            frame_gt[f"veh-{index:04d}"] = (session.state.x, session.state.y)
            artifacts.cte_values.append(obs.cte)
        artifacts.gt_frames.append(frame_gt)
        artifacts.tracked_frames.append(tracker.observe(frame_gt))
        if metrics is not None:
            metrics.counter("drive.ticks").inc()
        if len(artifacts.gt_frames) < ticks:
            scheduler.schedule_in(dt, tick, label="eval.drive")

    with tracer.span(
        "drive.world", track=track_name, vehicles=n_vehicles, ticks=ticks
    ):
        scheduler.schedule_in(dt, tick, label="eval.drive")
        scheduler.run_all()

    artifacts.lap_stats = [slot[0].stats for slot in sessions]
    artifacts.detections = tracker.detections
    artifacts.tracks_spawned = tracker.spawned
    laps = sum(stats.laps_completed for stats in artifacts.lap_stats)
    lap_times = [
        time for stats in artifacts.lap_stats for time in stats.lap_times
    ]
    crashes = sum(stats.crashes for stats in artifacts.lap_stats)
    steps = sum(stats.steps for stats in artifacts.lap_stats)
    mean_speed = (
        sum(stats.speed_sum for stats in artifacts.lap_stats) / steps
        if steps
        else 0.0
    )
    cte = np.abs(np.asarray(artifacts.cte_values, dtype=float))
    mean_lap = sum(lap_times) / len(lap_times) if lap_times else 0.0
    lines = [
        f"drive scenario {name!r} seed={seed}",
        f"  world     track={track_name} vehicles={n_vehicles} "
        f"ticks={ticks} dt={dt:.3f}s",
        f"  driving   laps={laps} mean_lap={mean_lap:.3f}s crashes={crashes} "
        f"mean_speed={mean_speed:.3f} m/s",
        f"  quality   cte_mean={float(cte.mean()) if cte.size else 0.0:.4f}m "
        f"cte_max={float(cte.max()) if cte.size else 0.0:.4f}m",
        f"  tracking  detections={tracker.detections} "
        f"tracks={tracker.spawned}",
    ]
    return "\n".join(lines) + "\n", artifacts
