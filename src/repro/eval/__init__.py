"""repro.eval: declarative scenarios, standardized scoring, goldens.

The evaluation harness every behavior-affecting PR is scored by:

* :mod:`repro.eval.spec` — composable :class:`ScenarioSpec` values with
  Hydra-style override/merge semantics;
* :mod:`repro.eval.library` — the canonical named scenarios plus the
  generated fleet ⊗ faults ⊗ net matrix;
* :mod:`repro.eval.runner` — interprets a spec into a full run on the
  simulated clock;
* :mod:`repro.eval.scorecard` — the :class:`Evaluator` producing
  canonical, per-seed byte-identical :class:`ScoreCard` JSON;
* :mod:`repro.eval.metrics` / :mod:`repro.eval.mot` — driving-quality
  and MOT-style tracking metrics;
* :mod:`repro.eval.cli` — the ``autolearn eval`` subcommand.
"""

from repro.eval.library import (
    BASE_SPECS,
    MATRIX_AXES,
    MATRIX_BASE,
    matrix_specs,
    scenario_names,
    scenario_spec,
)
from repro.eval.metrics import cte_stats, percentile, trajectory_cte
from repro.eval.mot import MotReport, evaluate_tracking, trajectory_jitter
from repro.eval.runner import ScenarioRun, run_scenario
from repro.eval.scorecard import Evaluator, ScoreCard
from repro.eval.spec import (
    ScenarioSpec,
    apply_overrides,
    canonical_json,
    merge_overrides,
)

__all__ = [
    "BASE_SPECS",
    "MATRIX_AXES",
    "MATRIX_BASE",
    "matrix_specs",
    "scenario_names",
    "scenario_spec",
    "cte_stats",
    "percentile",
    "trajectory_cte",
    "MotReport",
    "evaluate_tracking",
    "trajectory_jitter",
    "ScenarioRun",
    "run_scenario",
    "Evaluator",
    "ScoreCard",
    "ScenarioSpec",
    "apply_overrides",
    "canonical_json",
    "merge_overrides",
]
