"""Scalar driving-quality metrics shared by the evaluators.

Offline scoring works on complete runs, so percentiles here are exact
nearest-rank over the full sample (unlike the streaming log-bucket
histograms the serving hot path uses) — the scorecard is the regression
surface and should not carry bucketing error.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.sim.tracks import Track

__all__ = ["percentile", "cte_stats", "trajectory_cte"]


def percentile(values, q: float) -> float:
    """Exact nearest-rank percentile (``q`` in [0, 1]) of a sample."""
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"q must be in [0, 1], got {q}")
    data = np.sort(np.asarray(values, dtype=float))
    if data.size == 0:
        return 0.0
    index = min(int(q * data.size), data.size - 1)
    return float(data[index])


def cte_stats(values) -> dict[str, float]:
    """Mean / p95 / max of unsigned cross-track error (metres)."""
    data = np.abs(np.asarray(values, dtype=float))
    if data.size == 0:
        return {"mean_m": 0.0, "p95_m": 0.0, "max_m": 0.0}
    return {
        "mean_m": float(data.mean()),
        "p95_m": percentile(data, 0.95),
        "max_m": float(data.max()),
    }


def trajectory_cte(track: Track, points) -> np.ndarray:
    """Signed cross-track error of ``points`` (N×2) against ``track``.

    Thin wrapper over :meth:`~repro.sim.tracks.Track.query` so the
    evaluator (and its property tests) score trajectories without
    reaching into track internals.  Non-negative under ``abs`` and, for
    points displaced along the local lane normal, proportional to the
    displacement — the monotonicity the property suite pins.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ConfigurationError(
            f"points must be N x 2 positions, got shape {points.shape}"
        )
    return np.asarray(track.query(points).signed_cte, dtype=float)
