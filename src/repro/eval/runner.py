"""Interpret a :class:`~repro.eval.spec.ScenarioSpec`: build, wire, run.

One generic runner per scenario *kind*.  Each builds the same object
graph, in the same order, with the same values as the historical
hand-coded runners in :mod:`repro.scenarios` — which is what keeps the
obs/fleet golden traces byte-identical now that those scenarios are
just named specs interpreted here.

``instrument=False`` swaps the :class:`~repro.obs.tracer.Tracer` for a
:class:`~repro.obs.tracer.NullTracer` and drops the metrics registry;
the run's *behavior* (and hence its scorecard) must not change, which
the property suite pins.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.common.clock import EventScheduler
from repro.common.errors import ConfigurationError
from repro.eval.drive import run_drive
from repro.eval.library import net_route
from repro.eval.spec import ScenarioSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer, Tracer

__all__ = ["ScenarioRun", "run_scenario"]


@dataclass
class ScenarioRun:
    """One finished scenario: instrumentation, summary, artifacts."""

    spec: ScenarioSpec
    seed: int
    tracer: Tracer | NullTracer
    metrics: MetricsRegistry | None
    summary: str
    artifacts: dict[str, Any] = field(default_factory=dict)


def _instrumentation(clock, instrument: bool):
    if instrument:
        return Tracer(clock), MetricsRegistry()
    return NullTracer(), None


def _run_pipeline(
    spec: ScenarioSpec, seed: int, work_dir: Path, instrument: bool
) -> ScenarioRun:
    from repro.core.pipeline import AutoLearnPipeline
    from repro.testbed.chameleon import Chameleon

    params = spec.params
    chameleon = Chameleon()
    tracer, metrics = _instrumentation(chameleon.clock, instrument)
    pathway = str(params.get("pathway", "digital"))
    pipeline = AutoLearnPipeline(
        pathway,
        work_dir,
        n_records=int(params.get("n_records", 80)),
        epochs=int(params.get("epochs", 1)),
        camera_hw=tuple(params.get("camera_hw", [24, 32])),
        model_scale=float(params.get("model_scale", 0.25)),
        eval_ticks=int(params.get("eval_ticks", 60)),
        seed=seed,
        chameleon=chameleon,
        tracer=tracer if instrument else None,
        metrics=metrics,
    )
    report = pipeline.run()
    tracer.close_all()
    lines = [f"{spec.name} pathway={pathway} seed={seed}"]
    for stage in report.stages:
        lines.append(
            f"  {stage.stage:12s} {stage.alternative:12s} "
            f"{stage.sim_seconds:12.4f} s"
        )
    lines.append(f"  total        {report.total_sim_seconds:25.4f} s")
    return ScenarioRun(
        spec, seed, tracer, metrics, "\n".join(lines) + "\n",
        {"report": report},
    )


def _make_workload(workload_params: dict, seed: int):
    from repro.serve.workload import PoissonWorkload, VehicleFleetWorkload

    shape = str(workload_params.get("shape", "poisson"))
    if shape == "poisson":
        return PoissonWorkload(
            float(workload_params.get("rate_hz", 50.0)),
            deadline_s=float(workload_params.get("deadline_s", 0.1)),
            seed=seed,
        )
    if shape == "vehicles":
        return VehicleFleetWorkload(
            int(workload_params.get("n_vehicles", 16)),
            deadline_ticks=int(workload_params.get("deadline_ticks", 2)),
            seed=seed,
        )
    raise ConfigurationError(
        f"unknown workload shape {shape!r}; choose poisson or vehicles"
    )


def _run_serve(spec: ScenarioSpec, seed: int, instrument: bool) -> ScenarioRun:
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.serve.replica import BatchLatencyModel
    from repro.serve.service import InferenceService
    from repro.testbed.hardware import gpu_spec

    params = spec.params
    scheduler = EventScheduler()
    tracer, metrics = _instrumentation(scheduler.clock, instrument)
    service_params = dict(params.get("service", {}))
    plan = FaultPlan.from_dicts(params.get("faults", []))
    injector = None
    if len(plan):
        injector = FaultInjector(
            plan, seed=seed, tracer=tracer if instrument else None
        )
    latency_model = BatchLatencyModel.from_gpu(
        gpu_spec(str(service_params.get("gpu", "V100"))),
        flops_per_frame=float(service_params.get("flops_per_frame", 1e8)),
    )
    service = InferenceService(
        latency_model,
        scheduler=scheduler,
        n_replicas=int(service_params.get("replicas", 1)),
        router=str(service_params.get("router", "least-outstanding")),
        batch_policy=str(service_params.get("batch_policy", "adaptive")),
        queue_capacity=int(service_params.get("queue_capacity", 256)),
        queue_policy=str(service_params.get("queue_policy", "drop")),
        route=net_route(str(params.get("net", "lan"))),
        seed=seed,
        injector=injector,
        tracer=tracer if instrument else None,
        metrics=metrics,
        trace_requests=bool(params.get("trace_requests", False)),
    )
    workload = _make_workload(dict(params.get("workload", {})), seed)
    summary = service.run(workload, float(params.get("duration_s", 1.0)))
    tracer.close_all()
    return ScenarioRun(
        spec, seed, tracer, metrics, summary.to_text(),
        {"summary": summary, "workload": workload, "slo": service.slo},
    )


def _run_chaos(spec: ScenarioSpec, seed: int, instrument: bool) -> ScenarioRun:
    from repro.serve.chaos import ChaosScenario, run_chaos

    scheduler = EventScheduler()
    tracer, metrics = _instrumentation(scheduler.clock, instrument)
    scenario = ChaosScenario.from_dict(dict(spec.params.get("scenario", {})))
    summary = run_chaos(
        scenario,
        seed=seed,
        tracer=tracer if instrument else None,
        metrics=metrics,
        scheduler=scheduler,
    )
    tracer.close_all()
    return ScenarioRun(
        spec, seed, tracer, metrics, summary.to_text(), {"summary": summary}
    )


def _run_fleet(spec: ScenarioSpec, seed: int, instrument: bool) -> ScenarioRun:
    from repro.faults.plan import FaultPlan
    from repro.fleet import FleetConfig, FleetLoop, GateThresholds

    params = dict(spec.params)
    scheduler = EventScheduler()
    tracer, metrics = _instrumentation(scheduler.clock, instrument)
    gates = GateThresholds(**dict(params.pop("gates", {})))
    plans = tuple(
        (int(entry["round"]), FaultPlan.from_dicts(entry["faults"]))
        for entry in params.pop("canary_fault_plans", [])
    )
    try:
        config = FleetConfig(
            gates=gates, canary_fault_plans=plans, seed=seed, **params
        )
    except TypeError as exc:
        raise ConfigurationError(f"bad fleet spec {spec.name!r}: {exc}") from None
    loop = FleetLoop(
        config,
        scheduler=scheduler,
        tracer=tracer if instrument else None,
        metrics=metrics,
    )
    summary = loop.run()
    tracer.close_all()
    return ScenarioRun(
        spec, seed, tracer, metrics, summary.to_text(), {"summary": summary}
    )


def _run_drive(spec: ScenarioSpec, seed: int, instrument: bool) -> ScenarioRun:
    scheduler = EventScheduler()
    tracer, metrics = _instrumentation(scheduler.clock, instrument)
    summary, artifacts = run_drive(
        spec.name, spec.params, seed, scheduler, tracer, metrics
    )
    tracer.close_all()
    return ScenarioRun(
        spec, seed, tracer, metrics, summary, {"artifacts": artifacts}
    )


def run_scenario(
    spec: ScenarioSpec,
    seed: int = 0,
    work_dir: str | Path | None = None,
    instrument: bool = True,
) -> ScenarioRun:
    """Run one spec to completion on the simulated clock.

    ``work_dir`` holds scratch artifacts for filesystem-using kinds
    (``pipeline``); when omitted a temporary directory is created and —
    because the scenario body runs inside the ``with`` block — removed
    even when the scenario raises.  Nothing in the returned run depends
    on the path, so outputs are byte-identical per seed either way.
    """
    seed = int(seed)
    if spec.kind == "pipeline":
        if work_dir is not None:
            return _run_pipeline(spec, seed, Path(work_dir), instrument)
        with tempfile.TemporaryDirectory() as tmp:
            return _run_pipeline(spec, seed, Path(tmp), instrument)
    if spec.kind == "serve":
        return _run_serve(spec, seed, instrument)
    if spec.kind == "chaos":
        return _run_chaos(spec, seed, instrument)
    if spec.kind == "fleet":
        return _run_fleet(spec, seed, instrument)
    if spec.kind == "drive":
        return _run_drive(spec, seed, instrument)
    raise ConfigurationError(f"unknown scenario kind {spec.kind!r}")
