"""MOT-style tracking metrics over vehicle trajectories.

The multi-vehicle drive scenarios produce two aligned frame sequences:
ground-truth vehicle positions and the estimates of a (deliberately
imperfect) perception tracker.  :func:`evaluate_tracking` scores the
estimates with the classic multi-object-tracking accounting — per-frame
association within a gating radius, misses, false positives, identity
switches, a MOTA-style aggregate — plus a jitter (trajectory smoothness)
metric, mirroring the association/ID-stability/jitter trio of the
SceneScape tracking-evaluation ADR.

Association is deterministic: a ground-truth object first tries to keep
its previously matched track (standard MOTA continuity), then remaining
pairs match greedily by ``(distance, gt_id, track_id)``, so equal
distances break ties stably and the same inputs always yield the same
report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.common.errors import ConfigurationError

__all__ = ["MotReport", "evaluate_tracking", "trajectory_jitter"]

#: One frame of observations: ``{object_id: (x, y)}``.
Frame = Mapping[str, tuple[float, float]]


@dataclass(frozen=True)
class MotReport:
    """Aggregate association / identity / smoothness metrics."""

    frames: int
    gt_total: int          # ground-truth object instances over all frames
    matches: int           # gt instances matched to a track
    misses: int            # gt instances with no track within the gate
    false_positives: int   # track instances matching no gt
    id_switches: int       # gt matched to a different track than before
    mota: float            # 1 - (misses + fp + idsw) / gt_total
    association_accuracy: float  # matches keeping their established id
    mean_match_error_m: float    # mean matched gt<->track distance
    jitter_m: float        # mean second-difference magnitude of tracks

    def to_dict(self) -> dict:
        """JSON-ready view (scorecards)."""
        return {
            "frames": self.frames,
            "gt_total": self.gt_total,
            "matches": self.matches,
            "misses": self.misses,
            "false_positives": self.false_positives,
            "id_switches": self.id_switches,
            "mota": self.mota,
            "association_accuracy": self.association_accuracy,
            "mean_match_error_m": self.mean_match_error_m,
            "jitter_m": self.jitter_m,
        }


def _distance(a: tuple[float, float], b: tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


def trajectory_jitter(frames: Sequence[Frame]) -> float:
    """Mean second-difference magnitude over every track (metres).

    For each track id present in three consecutive frames the local
    jitter is ``|p[t+1] - 2 p[t] + p[t-1]|`` — zero for uniform motion,
    growing with measurement noise and identity flapping.
    """
    total = 0.0
    count = 0
    for prev, here, after in zip(frames, frames[1:], frames[2:]):
        for track_id, p1 in here.items():
            p0 = prev.get(track_id)
            p2 = after.get(track_id)
            if p0 is None or p2 is None:
                continue
            total += math.hypot(
                p2[0] - 2.0 * p1[0] + p0[0], p2[1] - 2.0 * p1[1] + p0[1]
            )
            count += 1
    return total / count if count else 0.0


def evaluate_tracking(
    gt_frames: Sequence[Frame],
    tracked_frames: Sequence[Frame],
    match_radius_m: float = 0.5,
) -> MotReport:
    """Score tracker output against aligned ground-truth frames."""
    if len(gt_frames) != len(tracked_frames):
        raise ConfigurationError(
            f"frame sequences differ in length: {len(gt_frames)} vs "
            f"{len(tracked_frames)}"
        )
    if match_radius_m <= 0:
        raise ConfigurationError(
            f"match_radius_m must be positive, got {match_radius_m}"
        )
    gt_total = matches = misses = false_positives = id_switches = 0
    consistent = 0
    error_sum = 0.0
    last_track_of: dict[str, str] = {}
    for gt, tracked in zip(gt_frames, tracked_frames):
        gt_total += len(gt)
        unmatched_gt = dict(gt)
        unmatched_tracks = dict(tracked)
        assigned: dict[str, str] = {}
        # Continuity pass: keep last frame's pairing when still gated.
        for gt_id in sorted(unmatched_gt):
            track_id = last_track_of.get(gt_id)
            if track_id is None or track_id not in unmatched_tracks:
                continue
            distance = _distance(unmatched_gt[gt_id], unmatched_tracks[track_id])
            if distance <= match_radius_m:
                assigned[gt_id] = track_id
                error_sum += distance
                del unmatched_gt[gt_id]
                del unmatched_tracks[track_id]
        # Greedy pass over the remaining pairs, stable tie-breaking.
        candidates = sorted(
            (
                (_distance(gt_pos, track_pos), gt_id, track_id)
                for gt_id, gt_pos in unmatched_gt.items()
                for track_id, track_pos in unmatched_tracks.items()
            ),
        )
        for distance, gt_id, track_id in candidates:
            if distance > match_radius_m:
                break
            if gt_id not in unmatched_gt or track_id not in unmatched_tracks:
                continue
            assigned[gt_id] = track_id
            error_sum += distance
            del unmatched_gt[gt_id]
            del unmatched_tracks[track_id]
        matches += len(assigned)
        misses += len(unmatched_gt)
        false_positives += len(unmatched_tracks)
        for gt_id, track_id in assigned.items():
            previous = last_track_of.get(gt_id)
            if previous is not None and previous != track_id:
                id_switches += 1
            else:
                consistent += 1
            last_track_of[gt_id] = track_id
    mota = (
        1.0 - (misses + false_positives + id_switches) / gt_total
        if gt_total
        else 1.0
    )
    return MotReport(
        frames=len(gt_frames),
        gt_total=gt_total,
        matches=matches,
        misses=misses,
        false_positives=false_positives,
        id_switches=id_switches,
        mota=mota,
        association_accuracy=consistent / matches if matches else 1.0,
        mean_match_error_m=error_sum / matches if matches else 0.0,
        jitter_m=trajectory_jitter(tracked_frames),
    )
