"""ScoreCards: canonical, diffable metric summaries of scenario runs.

The :class:`Evaluator` turns a finished
:class:`~repro.eval.runner.ScenarioRun` into a :class:`ScoreCard` — a
nested ``group -> metric -> value`` dict of plain JSON scalars scored
entirely on the simulated clock.  Groups are per scenario kind:

* ``slo`` / ``losses`` / ``staleness`` for serving kinds (serve,
  chaos), including deadline attainment and the stale-command ratio;
* ``faults`` for chaos (planned/started/cleared);
* ``fleet`` for continuum-loop runs (promotions, rollbacks, data
  volumes, mean promotion latency);
* ``pipeline`` for pathway runs (per-stage simulated seconds);
* ``driving`` / ``mot`` for drive worlds (lap time, cross-track error
  mean/p95/max, association/ID-switch/jitter tracking metrics).

Serialization is canonical: keys sorted, floats rounded to 9 decimals
with negative zero normalized, two-space indent, trailing newline — so
a scorecard is byte-identical per (spec, seed) and any behavior change
shows up as a one-line JSON diff against the checked-in golden.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import ConfigurationError
from repro.eval.metrics import cte_stats
from repro.eval.mot import evaluate_tracking
from repro.eval.runner import ScenarioRun
from repro.eval.spec import canonical_json

__all__ = ["ScoreCard", "Evaluator", "canonical_value"]

#: Decimal places kept in canonical scorecard floats.  Enough to see
#: any real metric movement; few enough to absorb nothing — float64
#: arithmetic here is deterministic, rounding just fixes the *textual*
#: form (e.g. ``-0.0`` vs ``0.0``).
FLOAT_DECIMALS = 9


def canonical_value(value: Any) -> Any:
    """Normalize a metric value for canonical JSON emission."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        rounded = round(value, FLOAT_DECIMALS)
        return 0.0 if rounded == 0.0 else rounded
    if isinstance(value, dict):
        return {str(key): canonical_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    raise ConfigurationError(
        f"metric value {value!r} is not a JSON scalar/container"
    )


@dataclass(frozen=True)
class ScoreCard:
    """One scored run: scenario identity plus grouped metrics."""

    scenario: str
    kind: str
    seed: int
    spec_digest: str
    metrics: dict[str, dict[str, Any]]

    def to_dict(self) -> dict:
        """JSON-ready view (already canonicalized values)."""
        return {
            "scenario": self.scenario,
            "kind": self.kind,
            "seed": self.seed,
            "spec_digest": self.spec_digest,
            "metrics": canonical_value(self.metrics),
        }

    def to_json(self) -> str:
        """The canonical byte form golden files store and tests pin."""
        return canonical_json(self.to_dict())

    def diff(self, other: "ScoreCard") -> list[str]:
        """Human-readable per-line differences against ``other``."""
        mine = self.to_json().splitlines()
        theirs = other.to_json().splitlines()
        out = []
        for line in theirs:
            if line not in mine:
                out.append(f"- {line.strip()}")
        for line in mine:
            if line not in theirs:
                out.append(f"+ {line.strip()}")
        return out


def _serve_groups(summary, slo, workload) -> dict[str, dict]:
    """slo / losses / staleness groups shared by serve and chaos runs."""
    losses = summary.dropped + summary.shed + summary.rejected + summary.expired
    groups = {
        "slo": {
            "offered": summary.offered,
            "completed": summary.completed,
            "deadline_met": summary.deadline_met,
            "deadline_attainment": (
                slo.deadline_attainment
                if slo is not None
                else (
                    summary.deadline_met / summary.completed
                    if summary.completed
                    else 1.0
                )
            ),
            "deadline_miss_rate": summary.deadline_miss_rate,
            "goodput_hz": summary.goodput_hz,
            "throughput_hz": summary.throughput_hz,
            "p50_ms": summary.p50_ms,
            "p95_ms": summary.p95_ms,
            "p99_ms": summary.p99_ms,
        },
        "losses": {
            "dropped": summary.dropped,
            "shed": summary.shed,
            "rejected": summary.rejected,
            "expired": summary.expired,
            "requeued": summary.requeued,
            "conserved": summary.offered == summary.completed + losses,
        },
        "staleness": {
            "stale_ticks": summary.stale_ticks,
            "stale_ratio": (
                getattr(workload, "stale_ratio", 0.0) if workload else 0.0
            ),
        },
    }
    return groups


class Evaluator:
    """Score any :class:`~repro.eval.runner.ScenarioRun` on sim time."""

    def evaluate(self, run: ScenarioRun) -> ScoreCard:
        """Produce the canonical scorecard for one finished run."""
        kind = run.spec.kind
        if kind == "serve":
            groups = _serve_groups(
                run.artifacts["summary"],
                run.artifacts.get("slo"),
                run.artifacts.get("workload"),
            )
        elif kind == "chaos":
            groups = self._chaos_groups(run.artifacts["summary"])
        elif kind == "fleet":
            groups = self._fleet_groups(run.artifacts["summary"])
        elif kind == "pipeline":
            groups = self._pipeline_groups(run.artifacts["report"])
        elif kind == "drive":
            groups = self._drive_groups(run.artifacts["artifacts"])
        else:
            raise ConfigurationError(f"unknown scenario kind {kind!r}")
        return ScoreCard(
            scenario=run.spec.name,
            kind=kind,
            seed=run.seed,
            spec_digest=run.spec.digest(),
            metrics={
                group: canonical_value(values)
                for group, values in groups.items()
            },
        )

    # ------------------------------------------------------- per kind

    def _chaos_groups(self, summary) -> dict[str, dict]:
        groups = _serve_groups(summary.serve, None, None)
        groups["staleness"] = {
            "stale_ticks": summary.serve.stale_ticks,
            "stale_ratio": summary.stale_ratio,
            "fresh_response_ratio": summary.fresh_response_ratio,
            "max_stale_streak": summary.max_stale_streak,
            "lost_responses": summary.lost_responses,
        }
        groups["faults"] = {
            "planned": summary.planned,
            "started": summary.started,
            "cleared": summary.cleared,
            "crashes": summary.serve.crashes,
            "hangs": summary.serve.hangs,
            "requeued": summary.serve.requeued,
            "conserved": summary.conserved,
        }
        return groups

    def _fleet_groups(self, summary) -> dict[str, dict]:
        return {
            "fleet": {
                "rounds": len(summary.rounds),
                "elapsed_s": summary.elapsed_s,
                "records_flushed": summary.records_flushed,
                "records_ingested": summary.records_ingested,
                "candidates_published": summary.candidates_published,
                "promotions": summary.promotions,
                "rollbacks": summary.rollbacks,
                "final_stable": summary.final_stable,
                "mean_promotion_latency_s": summary.mean_promotion_latency_s,
            },
        }

    def _pipeline_groups(self, report) -> dict[str, dict]:
        stages = {
            stage.stage: {
                "alternative": stage.alternative,
                "sim_seconds": stage.sim_seconds,
            }
            for stage in report.stages
        }
        return {
            "pipeline": {
                "total_sim_seconds": report.total_sim_seconds,
                "stages": stages,
            },
        }

    def _drive_groups(self, artifacts) -> dict[str, dict]:
        lap_times = [
            time
            for stats in artifacts.lap_stats
            for time in stats.lap_times
        ]
        steps = sum(stats.steps for stats in artifacts.lap_stats)
        speed_sum = sum(stats.speed_sum for stats in artifacts.lap_stats)
        cte = cte_stats(artifacts.cte_values)
        mot = evaluate_tracking(
            artifacts.gt_frames,
            artifacts.tracked_frames,
            match_radius_m=artifacts.match_radius_m,
        )
        return {
            "driving": {
                "vehicles": artifacts.n_vehicles,
                "ticks": artifacts.ticks,
                "laps": sum(s.laps_completed for s in artifacts.lap_stats),
                "mean_lap_s": (
                    sum(lap_times) / len(lap_times) if lap_times else 0.0
                ),
                "best_lap_s": min(lap_times) if lap_times else 0.0,
                "crashes": sum(s.crashes for s in artifacts.lap_stats),
                "mean_speed_mps": speed_sum / steps if steps else 0.0,
                "cte_mean_m": cte["mean_m"],
                "cte_p95_m": cte["p95_m"],
                "cte_max_m": cte["max_m"],
            },
            "mot": mot.to_dict(),
        }
