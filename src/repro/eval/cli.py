"""``autolearn eval``: enumerate, run, score, and diff scenarios.

Mirrors the :mod:`repro.analysis.cli` split: :func:`add_eval_arguments`
builds the subparser and :func:`run_eval_command` interprets it, so the
top-level :mod:`repro.cli` stays a thin table.

Exit codes: 0 — every scorecard matched its golden (or goldens were
updated / comparison skipped); 1 — at least one scorecard diverged or
has no golden yet; 2 — bad invocation (unknown scenario).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.common.errors import ConfigurationError

__all__ = ["add_eval_arguments", "run_eval_command", "default_golden_dir"]


def default_golden_dir() -> Path:
    """The checked-in golden scorecards (tests/eval/golden)."""
    return Path(__file__).resolve().parents[3] / "tests" / "eval" / "golden"


def add_eval_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``eval`` subcommand's arguments to ``parser``."""
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="NAME",
                        help="run one named scenario (repeatable); default "
                             "is the whole library")
    parser.add_argument("--matrix", action="store_true",
                        help="run every generated matrix cell")
    parser.add_argument("--list", action="store_true",
                        help="list known scenarios and exit")
    parser.add_argument("--seed", type=int, action="append", default=None,
                        help="seed to score (repeatable; default 0)")
    parser.add_argument("--out", default="",
                        help="directory to write scorecard JSON files into")
    parser.add_argument("--golden", default="",
                        help="golden scorecard directory (default: the "
                             "checked-in tests/eval/golden)")
    parser.add_argument("--no-golden", action="store_true",
                        help="skip the golden comparison entirely")
    parser.add_argument("--update-goldens", action="store_true",
                        help="rewrite the golden scorecards from this run")


def _selected_specs(args) -> list:
    from repro.eval.library import BASE_SPECS, matrix_specs, scenario_spec

    specs = []
    if args.scenario:
        specs.extend(scenario_spec(name) for name in args.scenario)
    if args.matrix:
        specs.extend(matrix_specs())
    if not specs:
        specs = list(BASE_SPECS.values())
    return specs


def run_eval_command(args) -> int:
    """Run the selected scenarios and diff against golden scorecards."""
    from repro.eval.library import scenario_names
    from repro.eval.runner import run_scenario
    from repro.eval.scorecard import Evaluator

    if args.list:
        for name in scenario_names(matrix=True):
            print(name)
        return 0
    try:
        specs = _selected_specs(args)
    except ConfigurationError as exc:
        print(f"error: {exc}")
        return 2
    seeds = args.seed if args.seed else [0]
    golden_dir = Path(args.golden) if args.golden else default_golden_dir()
    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    if args.update_goldens:
        golden_dir.mkdir(parents=True, exist_ok=True)
    evaluator = Evaluator()
    failures = 0
    for spec in specs:
        for seed in seeds:
            card = evaluator.evaluate(run_scenario(spec, seed=seed))
            text = card.to_json()
            filename = f"{spec.name}-seed{seed}.json"
            if out_dir is not None:
                (out_dir / filename).write_text(text)
            if args.no_golden:
                print(f"ran   {spec.name} seed={seed} "
                      f"digest={card.spec_digest}")
                continue
            golden_path = golden_dir / filename
            if args.update_goldens:
                golden_path.write_text(text)
                print(f"wrote {spec.name} seed={seed} -> {golden_path}")
                continue
            if not golden_path.exists():
                failures += 1
                print(f"NEW   {spec.name} seed={seed} (no golden at "
                      f"{golden_path}; rerun with --update-goldens)")
                continue
            golden = golden_path.read_text()
            if golden == text:
                print(f"ok    {spec.name} seed={seed} "
                      f"digest={card.spec_digest}")
            else:
                failures += 1
                print(f"DIFF  {spec.name} seed={seed}")
                for mine, theirs in zip(
                    text.splitlines(), golden.splitlines()
                ):
                    if mine != theirs:
                        print(f"  - {theirs.strip()}")
                        print(f"  + {mine.strip()}")
    if failures:
        print(f"{failures} scorecard(s) diverged")
        return 1
    return 0
