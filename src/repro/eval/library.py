"""The canonical scenario library: base specs, deltas, and the matrix.

Holds the declarative form of every named scenario:

* the four trace scenarios from :mod:`repro.scenarios`, re-expressed as
  :class:`~repro.eval.spec.ScenarioSpec` values whose runs are
  byte-identical to the historical hand-coded ones (the golden-trace
  suite holds either way);
* ``drive-mot`` — a multi-vehicle drive world scored with lap/CTE/MOT
  metrics (evaluation-only; not part of ``TRACE_SCENARIOS``);
* a generated matrix — fleet size ⊗ fault plan ⊗ network profile over
  a closed-loop serving base — built by composing named override deltas
  (:data:`MATRIX_AXES`) onto :data:`MATRIX_BASE`, Hydra-style.

Everything here is data; :mod:`repro.eval.runner` interprets it.
"""

from __future__ import annotations

import itertools

from repro.common.errors import ConfigurationError
from repro.eval.spec import ScenarioSpec
from repro.net.links import WIFI_EDGE, Link
from repro.net.topology import Route

__all__ = [
    "BASE_SPECS",
    "MATRIX_BASE",
    "MATRIX_AXES",
    "NET_PROFILES",
    "scenario_spec",
    "scenario_names",
    "matrix_specs",
    "net_route",
]

#: A lossy, jittery wide-area hop for the ``degraded`` profile.
DEGRADED_WAN = Link(
    "wan-degraded",
    base_latency_s=0.012,
    jitter_scale=0.9,
    bandwidth_bps=80e6,
    loss_rate=0.02,
)

#: Named network profiles a serve-kind spec may reference.
NET_PROFILES = ("lan", "degraded")


def net_route(profile: str) -> Route | None:
    """Resolve a named network profile to a vehicle→service route.

    ``lan`` is the historical in-rack default: no modeled network at
    all.  ``degraded`` rides a wifi edge hop plus a lossy WAN hop.
    """
    if profile == "lan":
        return None
    if profile == "degraded":
        return Route("vehicle", "cloud-pop", (WIFI_EDGE, DEGRADED_WAN))
    raise ConfigurationError(
        f"unknown net profile {profile!r}; available: "
        f"{', '.join(NET_PROFILES)}"
    )


def _spec(name: str, kind: str, params: dict) -> ScenarioSpec:
    return ScenarioSpec(name=name, kind=kind, params=params)


#: The four historical trace scenarios plus ``drive-mot``, as specs.
BASE_SPECS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        _spec(
            "pipeline-quickstart",
            "pipeline",
            {
                "pathway": "digital",
                "n_records": 80,
                "epochs": 1,
                "camera_hw": [24, 32],
                "model_scale": 0.25,
                "eval_ticks": 60,
            },
        ),
        _spec(
            "serve-load",
            "serve",
            {
                "duration_s": 1.0,
                "service": {
                    "replicas": 2,
                    "router": "least-outstanding",
                    "batch_policy": "adaptive",
                    "queue_capacity": 256,
                    "queue_policy": "drop",
                    "gpu": "V100",
                    "flops_per_frame": 1e8,
                },
                "workload": {
                    "shape": "poisson",
                    "rate_hz": 50.0,
                    "deadline_s": 0.1,
                },
                "net": "lan",
                "faults": [],
                "trace_requests": True,
            },
        ),
        _spec(
            "chaos-crash",
            "chaos",
            {
                "scenario": {
                    "name": "chaos-crash",
                    "duration_s": 6.0,
                    "vehicles": 16,
                    "replicas": 2,
                    "autoscale": False,
                    "faults": [
                        {
                            "kind": "replica-crash",
                            "target": "replica:any",
                            "at_s": 2.0,
                        },
                        {
                            "kind": "replica-hang",
                            "target": "replica:any",
                            "at_s": 3.0,
                            "duration_s": 1.0,
                        },
                    ],
                },
            },
        ),
        _spec(
            "fleet-canary-chaos",
            "fleet",
            {
                "n_vehicles": 4,
                "records_per_flush": 12,
                "stage_vehicles": 4,
                "stage_duration_s": 0.6,
                "min_fresh_records": 48,
                "eval_records": 48,
                "gates": {"min_completions": 10},
                "canary_fraction": 0.35,
                "rounds": 3,
                "canary_fault_plans": [
                    {
                        "round": 3,
                        "faults": [
                            {
                                "kind": "replica-crash",
                                "target": "replica-0003",
                                "at_s": 0.1,
                            },
                        ],
                    },
                ],
            },
        ),
        _spec(
            "drive-mot",
            "drive",
            {
                "track": "default-tape-oval",
                "n_vehicles": 4,
                "ticks": 240,
                "dt": 0.05,
                "skill": 0.85,
                "steering_noise": 0.0,
                "perception": {
                    "noise_m": 0.06,
                    "dropout": 0.08,
                    "gate_m": 0.8,
                    "max_coast": 1,
                    "match_radius_m": 0.5,
                },
            },
        ),
    )
}

#: Base cell of the generated matrix: a closed-loop vehicle fleet
#: against two replicas, no faults, no modeled network.
MATRIX_BASE = _spec(
    "matrix-base",
    "serve",
    {
        "duration_s": 4.0,
        "service": {
            "replicas": 2,
            "router": "least-outstanding",
            "batch_policy": "adaptive",
            "queue_capacity": 256,
            "queue_policy": "drop",
            "gpu": "V100",
            "flops_per_frame": 1e8,
        },
        "workload": {
            "shape": "vehicles",
            "n_vehicles": 16,
            "deadline_ticks": 4,
        },
        "net": "lan",
        "faults": [],
        "trace_requests": False,
    },
)

#: Axis → named delta → override map.  The matrix is the cartesian
#: product of one delta per axis, composed onto :data:`MATRIX_BASE`.
MATRIX_AXES: dict[str, dict[str, dict]] = {
    "fleet": {
        "v016": {"workload.n_vehicles": 16},
        "v048": {"workload.n_vehicles": 48},
    },
    "faults": {
        "nofault": {"faults": []},
        "crash": {
            "faults": [
                {
                    "kind": "replica-crash",
                    "target": "replica:any",
                    "at_s": 1.5,
                },
            ],
        },
    },
    "net": {
        "lan": {"net": "lan"},
        "degraded": {"net": "degraded"},
    },
}


def matrix_specs() -> list[ScenarioSpec]:
    """Every matrix cell, in deterministic (sorted-delta) order."""
    axes = [sorted(MATRIX_AXES[axis]) for axis in MATRIX_AXES]
    cells = []
    for combo in itertools.product(*axes):
        overrides = [
            MATRIX_AXES[axis][delta]
            for axis, delta in zip(MATRIX_AXES, combo)
        ]
        cells.append(
            MATRIX_BASE.with_overrides(
                *overrides, name="matrix-" + "-".join(combo)
            )
        )
    return cells


def scenario_names(matrix: bool = False) -> tuple[str, ...]:
    """Known scenario names; the matrix cells too when ``matrix``."""
    names = tuple(BASE_SPECS)
    if matrix:
        names += tuple(spec.name for spec in matrix_specs())
    return names


def scenario_spec(name: str) -> ScenarioSpec:
    """Look up a named scenario (library first, then matrix cells)."""
    if name in BASE_SPECS:
        return BASE_SPECS[name]
    for spec in matrix_specs():
        if spec.name == name:
            return spec
    raise ConfigurationError(
        f"unknown eval scenario {name!r}; available: "
        f"{', '.join(scenario_names(matrix=True))}"
    )
