"""Declarative scenario specs with Hydra-style override composition.

A :class:`ScenarioSpec` is a value: a name, a scenario *kind* (which
runner interprets it), and a nested ``params`` dict of plain JSON types.
Variation is expressed as *override maps* — flat ``{"dot.path": value}``
dicts in the style of Hydra's command-line overrides — composed onto a
base spec:

>>> base.with_overrides({"workload.n_vehicles": 48}, {"net": "degraded"})

Two properties make override maps a good algebra for scenario matrices
(both are pinned by ``tests/property/test_eval_props.py``):

* **associative** — :func:`merge_overrides` is a flat dict union, so
  ``merge(merge(a, b), c) == merge(a, merge(b, c))``;
* **override-wins** — for any key present in several maps, the last
  map's value survives.

To keep application order-independent, a *composed* override map may
not contain a key that is a strict path-prefix of another (setting
``"a"`` and ``"a.b"`` in one composition is ambiguous and rejected).
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.common.errors import ConfigurationError

__all__ = [
    "SCENARIO_KINDS",
    "ScenarioSpec",
    "merge_overrides",
    "apply_overrides",
    "canonical_json",
]

#: Scenario kinds understood by :mod:`repro.eval.runner`.
SCENARIO_KINDS = ("pipeline", "serve", "chaos", "fleet", "drive")

_JSON_SCALARS = (str, int, float, bool, type(None))


def canonical_json(payload: Any) -> str:
    """The one true byte form: sorted keys, two-space indent, newline."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _check_json_value(value: Any, where: str) -> None:
    """Reject values that would not survive a JSON round trip."""
    if isinstance(value, _JSON_SCALARS):
        return
    if isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            _check_json_value(item, f"{where}[{i}]")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"non-string key {key!r} under {where!r}"
                )
            _check_json_value(item, f"{where}.{key}")
        return
    raise ConfigurationError(
        f"value at {where!r} is not a JSON type: {type(value).__name__}"
    )


def merge_overrides(*overrides: Mapping[str, Any]) -> dict[str, Any]:
    """Compose override maps; later maps win on equal keys.

    The result is a plain dict union, which is what makes composition
    associative.  Keys must be non-empty dot paths; a key that is a
    strict path-prefix of another key in the *composed* result is
    rejected so that :func:`apply_overrides` is order-independent.
    """
    merged: dict[str, Any] = {}
    for override in overrides:
        for key, value in override.items():
            if not isinstance(key, str) or not key or key != key.strip("."):
                raise ConfigurationError(f"invalid override path {key!r}")
            _check_json_value(value, key)
            merged[key] = value
    paths = sorted(merged)
    for shorter, longer in zip(paths, paths[1:]):
        if longer.startswith(shorter + "."):
            raise ConfigurationError(
                f"override path {shorter!r} is a prefix of {longer!r}; "
                "the composition is ambiguous"
            )
    return merged


def apply_overrides(
    params: Mapping[str, Any], overrides: Mapping[str, Any]
) -> dict[str, Any]:
    """Set each ``dot.path -> value`` into a deep copy of ``params``.

    Intermediate containers are created on demand; overriding *through*
    an existing non-dict value is an error (the path names a scalar's
    child, which cannot exist).
    """
    overrides = merge_overrides(overrides)
    out = copy.deepcopy(dict(params))
    for path in sorted(overrides):
        node = out
        parts = path.split(".")
        for part in parts[:-1]:
            child = node.get(part)
            if child is None:
                child = node[part] = {}
            elif not isinstance(child, dict):
                raise ConfigurationError(
                    f"override {path!r} traverses non-dict value at {part!r}"
                )
            node = child
        node[parts[-1]] = copy.deepcopy(overrides[path])
    return out


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative scenario: name, kind, and nested parameters."""

    name: str
    kind: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if self.kind not in SCENARIO_KINDS:
            raise ConfigurationError(
                f"unknown scenario kind {self.kind!r}; choose from "
                f"{', '.join(SCENARIO_KINDS)}"
            )
        _check_json_value(dict(self.params), self.name)

    # ------------------------------------------------------ composition

    def with_overrides(
        self, *overrides: Mapping[str, Any], name: str | None = None
    ) -> "ScenarioSpec":
        """A new spec with ``overrides`` composed onto this one's params."""
        merged = merge_overrides(*overrides)
        return ScenarioSpec(
            name=name if name is not None else self.name,
            kind=self.kind,
            params=apply_overrides(self.params, merged),
        )

    # ---------------------------------------------------- serialization

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view (spec files, round trips)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "params": copy.deepcopy(self.params),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Parse a spec dict (unknown keys rejected)."""
        unknown = set(payload) - {"name", "kind", "params"}
        if unknown:
            raise ConfigurationError(f"unknown spec keys: {sorted(unknown)}")
        if "name" not in payload or "kind" not in payload:
            raise ConfigurationError("a spec needs at least name and kind")
        return cls(
            name=str(payload["name"]),
            kind=str(payload["kind"]),
            params=copy.deepcopy(dict(payload.get("params", {}))),
        )

    def digest(self) -> str:
        """Short content hash of the canonical spec bytes."""
        text = canonical_json(self.to_dict())
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]
