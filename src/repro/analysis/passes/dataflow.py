"""RL601/RL602/RL603 — determinism-hazard dataflow rules.

The byte-identical-per-seed guarantee dies quietly: a ``set`` iterated
into an export, ``os.listdir`` feeding a replay, ``id()`` breaking sort
ties by memory address, or two scheduler callbacks mutating one module
global at the same simulated timestamp.  Three rules catch these as
*flows*, not spellings:

* **RL601** — order-sensitive consumption (``for``, ``list``/``tuple``,
  comprehensions, ``join``, ``enumerate``/``zip``/``map``/``filter``,
  argument splats) of an unordered producer: ``set`` displays and
  comprehensions, ``set()``/``frozenset()``, ``os.listdir``/``os.scandir``,
  ``glob.glob``/``iglob``, and ``Path.iterdir/glob/rglob``.  Taint is
  tracked through local assignments inside each scope; order-insensitive
  consumers (``sorted``, ``min``/``max``/``sum``/``len``/``any``/``all``,
  ``set``/``frozenset``, membership tests, set comprehensions) are
  exempt, and ``sorted(...)`` anywhere in the flow neutralises it.  The
  attached fix wraps the consumed expression in ``sorted(...)``.
* **RL602** — ``id`` used as a sort key (``key=id`` or a lambda calling
  ``id``): memory-address ordering differs run to run.
* **RL603** — the simulated-time race: a module-level mutable container
  written from two or more distinct ``EventScheduler`` callbacks,
  resolved through the project call graph
  (:meth:`repro.analysis.graph.ProjectGraph.flow_findings`).  Two
  callbacks landing on the same timestamp execute in heap order, so
  shared-state writes from different callback chains are ordering
  hazards even in a single-threaded simulator.
"""

from __future__ import annotations

import ast
from types import SimpleNamespace

from repro.analysis.base import LintPass, register
from repro.analysis.findings import Rule, TextEdit
from repro.analysis.passes.imports import ImportTracker

__all__ = ["DataflowPass", "RL601", "RL602", "RL603"]

RL601 = Rule(
    id="RL601",
    name="unordered-iter",
    description=(
        "Order-sensitive iteration over an unordered producer (set, "
        "os.listdir, glob, Path.iterdir); wrap in sorted() so event order, "
        "serialisation, and exports stay deterministic."
    ),
)

RL602 = Rule(
    id="RL602",
    name="id-sort-key",
    description=(
        "id() used as a sort key orders by memory address, which differs "
        "across runs; sort by a stable attribute instead."
    ),
)

RL603 = Rule(
    id="RL603",
    name="sim-time-race",
    description=(
        "Module-level mutable state written from more than one scheduler "
        "callback; same-timestamp delivery order makes this a determinism "
        "race — keep per-entity state or route writes through one owner."
    ),
)

# Unordered producers spelled as resolved dotted calls.
_UNORDERED_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)
# Unordered producers spelled as method calls (pathlib idiom).
_UNORDERED_METHODS = frozenset({"iterdir", "glob", "rglob", "scandir"})
# Order-insensitive consumers: iterating these over an unordered
# producer cannot leak nondeterminism into the result.
_ORDER_FREE = frozenset(
    {"sorted", "set", "frozenset", "min", "max", "sum", "len", "any", "all"}
)
# Order-sensitive consumers taking the iterable as first argument
# (or every argument, for the zip family).
_ORDER_SENSITIVE_HEAD = frozenset({"list", "tuple", "iter", "enumerate"})
_ORDER_SENSITIVE_ALL = frozenset({"zip", "map", "filter"})
_SORTERS = frozenset({"sorted", "min", "max"})


@register
class DataflowPass(LintPass):
    """Track unordered-producer taint and whole-program flow hazards."""

    rules = (RL601, RL602, RL603)

    # ------------------------------------------------------------ scopes

    def visit_Module(self, node: ast.Module) -> None:
        self._tracker = ImportTracker(watched=("os", "glob"))
        self._tracker.collect(node)
        self._scopes: list[dict[str, str]] = [{}]
        # Comprehensions passed straight into an order-free consumer
        # (sum(x for x in some_set)) are exempt; their node ids land here.
        self._order_free_nodes: set[int] = set()
        self._report_flow_hazards()
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scopes.append({})
        self.generic_visit(node)
        self._scopes.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._scopes.append({})
        self.generic_visit(node)
        self._scopes.pop()

    # ------------------------------------------------------ RL603 (flow)

    def _report_flow_hazards(self) -> None:
        for flow in self.index.graph.flow_findings_for(str(self.ctx.path)):
            if flow.kind != "race":
                continue
            roots = ", ".join(flow.roots)
            self.report(
                RL603,
                SimpleNamespace(lineno=flow.line, col_offset=flow.col),
                f"module-level '{flow.subject}' is written from "
                f"{len(flow.roots)} scheduler callbacks ({roots}); "
                "same-timestamp delivery order makes this a determinism race",
            )

    # ------------------------------------------------------ RL601 (taint)

    def _unordered(self, node: ast.expr) -> str | None:
        """Description of why ``node`` yields unordered elements, or None."""
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Name):
            for scope in reversed(self._scopes):
                if node.id in scope:
                    return scope[node.id]
            return None
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._unordered(node.left) or self._unordered(node.right)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return f"{func.id}(...)"
                resolved = self._tracker.resolve(func)
                if resolved in _UNORDERED_CALLS:
                    return f"{resolved}(...)"
                return None
            if isinstance(func, ast.Attribute):
                resolved = self._tracker.resolve(func)
                if resolved in _UNORDERED_CALLS:
                    return f"{resolved}(...)"
                if func.attr in _UNORDERED_METHODS and resolved is None:
                    return f".{func.attr}() results"
        return None

    def _sorted_fix(self, node: ast.expr) -> tuple[TextEdit, ...]:
        segment = ast.get_source_segment(self.ctx.source, node)
        if segment is None or getattr(node, "end_lineno", None) is None:
            return ()
        return (
            TextEdit(
                start_line=node.lineno,
                start_col=node.col_offset,
                end_line=node.end_lineno,
                end_col=node.end_col_offset,
                replacement=f"sorted({segment})",
            ),
        )

    def _check_consumption(self, node: ast.expr, where: str) -> None:
        desc = self._unordered(node)
        if desc is None:
            return
        self.report(
            RL601,
            node,
            f"{where} over {desc} has nondeterministic order; "
            "wrap it in sorted(...)",
            fixes=self._sorted_fix(node),
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        desc = self._unordered(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if desc is not None:
                    self._scopes[-1][target.id] = desc
                else:
                    self._scopes[-1].pop(target.id, None)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
            if isinstance(node.target, ast.Name):
                desc = self._unordered(node.value)
                if desc is not None:
                    self._scopes[-1][node.target.id] = desc
                else:
                    self._scopes[-1].pop(node.target.id, None)

    def visit_For(self, node: ast.For) -> None:
        self._check_consumption(node.iter, "iteration")
        self.generic_visit(node)

    visit_AsyncFor = visit_For  # type: ignore[assignment]

    def _check_comprehension(
        self, node: ast.ListComp | ast.DictComp | ast.GeneratorExp
    ) -> None:
        if id(node) not in self._order_free_nodes:
            for gen in node.generators:
                self._check_consumption(gen.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _check_comprehension  # type: ignore[assignment]
    visit_DictComp = _check_comprehension  # type: ignore[assignment]
    visit_GeneratorExp = _check_comprehension  # type: ignore[assignment]

    def visit_Starred(self, node: ast.Starred) -> None:
        if isinstance(node.ctx, ast.Load):
            self._check_consumption(node.value, "argument splat")
        self.generic_visit(node)

    # -------------------------------------------------- RL601/602 (calls)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr

        if name in _SORTERS or (isinstance(func, ast.Attribute) and name == "sort"):
            self._check_sort_key(node, name)

        if isinstance(func, ast.Name) and name in _ORDER_FREE:
            for arg in node.args:
                self._order_free_nodes.add(id(arg))

        if isinstance(func, ast.Name) and name in _ORDER_SENSITIVE_HEAD:
            if node.args:
                self._check_consumption(node.args[0], f"{name}(...)")
        elif isinstance(func, ast.Name) and name in _ORDER_SENSITIVE_ALL:
            args = node.args[1:] if name in ("map", "filter") else node.args
            for arg in args:
                self._check_consumption(arg, f"{name}(...)")
        elif isinstance(func, ast.Attribute) and name == "join" and node.args:
            self._check_consumption(node.args[0], "str.join")
        self.generic_visit(node)

    def _check_sort_key(self, node: ast.Call, name: str) -> None:
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            value = kw.value
            uses_id = (
                isinstance(value, ast.Name) and value.id == "id"
            ) or (
                isinstance(value, ast.Lambda)
                and any(
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Name)
                    and child.func.id == "id"
                    for child in ast.walk(value.body)
                )
            )
            if uses_id:
                self.report(
                    RL602,
                    value,
                    f"'{name}' keyed on id() orders by memory address, "
                    "which differs across runs; use a stable attribute",
                )
