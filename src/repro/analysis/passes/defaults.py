"""RL401 — mutable default arguments.

A ``def f(x=[])`` default is evaluated once at definition time and
shared across calls — state leaks between invocations, which in this
codebase means state leaks between *supposedly independent seeded
runs*.  Flags list/dict/set displays and comprehensions, and calls to
``list``/``dict``/``set``/``bytearray`` in default position.

The attached fix is the canonical mechanical repair: the default
becomes ``None`` and a ``if param is None: param = <original>`` guard
is inserted at the top of the body (after the docstring).  Lambdas and
one-line bodies get no fix — there is nowhere safe to put the guard.
"""

from __future__ import annotations

import ast

from repro.analysis.base import LintPass, register
from repro.analysis.findings import Rule, TextEdit

__all__ = ["MutableDefaultPass", "RL401"]

RL401 = Rule(
    id="RL401",
    name="mutable-default",
    description=(
        "Mutable default argument (list/dict/set) is shared across calls; "
        "default to None and build inside the function."
    ),
)

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict"})


def _is_mutable(node: ast.expr) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


@register
class MutableDefaultPass(LintPass):
    """Flag mutable values in positional and keyword-only defaults."""

    rules = (RL401,)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check(node)
        self.generic_visit(node)

    def _check(self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> None:
        args = node.args
        positional = args.posonlyargs + args.args
        for arg, default in zip(positional[len(positional) - len(args.defaults):],
                                args.defaults):
            if _is_mutable(default):
                self._flag(node, default, arg.arg)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None and _is_mutable(default):
                self._flag(node, default, arg.arg)

    def _flag(self, func: ast.AST, default: ast.expr, param: str) -> None:
        label = getattr(func, "name", "<lambda>")
        self.report(
            RL401,
            default,
            f"mutable default for parameter '{param}' of '{label}'",
            fixes=self._fix(func, default, param),
        )

    def _fix(
        self, func: ast.AST, default: ast.expr, param: str
    ) -> tuple[TextEdit, ...]:
        """``param=<mutable>`` -> ``param=None`` plus a body guard."""
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ()
        body = [
            stmt
            for stmt in func.body
            if not (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            )
        ]
        if not body or body[0].lineno <= func.lineno:
            return ()  # one-liner or docstring-only body: nowhere for a guard
        segment = ast.get_source_segment(self.ctx.source, default)
        if segment is None or getattr(default, "end_lineno", None) is None:
            return ()
        anchor = body[0]
        indent = " " * anchor.col_offset
        guard = (
            f"{indent}if {param} is None:\n"
            f"{indent}    {param} = {segment}\n"
        )
        return (
            TextEdit(
                start_line=default.lineno,
                start_col=default.col_offset,
                end_line=default.end_lineno,
                end_col=default.end_col_offset,
                replacement="None",
            ),
            TextEdit(
                start_line=anchor.lineno,
                start_col=0,
                end_line=anchor.lineno,
                end_col=0,
                replacement=guard,
            ),
        )
