"""The built-in lint passes.

Importing this package registers every pass with
:mod:`repro.analysis.base`; :func:`repro.analysis.base.all_passes`
triggers that import lazily so pass modules may themselves import the
base machinery without a cycle.
"""

from repro.analysis.passes.dataflow import RL601, RL602, RL603, DataflowPass
from repro.analysis.passes.defaults import RL401, MutableDefaultPass
from repro.analysis.passes.errors import RL201, RL202, RL203, ErrorHierarchyPass
from repro.analysis.passes.exports import RL301, RL302, RL303, ExportsPass
from repro.analysis.passes.layering import DEFAULT_LAYERS, RL501, LayeringPass
from repro.analysis.passes.rng import RL101, RL102, RL103, RngPass
from repro.analysis.passes.wall_clock import RL001, WallClockPass

__all__ = [
    "WallClockPass",
    "RngPass",
    "ErrorHierarchyPass",
    "ExportsPass",
    "MutableDefaultPass",
    "LayeringPass",
    "DataflowPass",
    "DEFAULT_LAYERS",
    "RL001",
    "RL101",
    "RL102",
    "RL103",
    "RL201",
    "RL202",
    "RL203",
    "RL301",
    "RL302",
    "RL303",
    "RL401",
    "RL501",
    "RL601",
    "RL602",
    "RL603",
]
