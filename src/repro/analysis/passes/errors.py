"""RL201/RL202/RL203 — error-hierarchy conformance.

``common/errors.py`` requires every subsystem to raise ``ReproError``
subclasses so callers can catch library failures without swallowing
programming errors.  Three rules guard that contract:

* **RL201** — bare ``except:`` clauses (catch ``KeyboardInterrupt`` and
  ``SystemExit`` too; never acceptable).
* **RL202** — ``except Exception``/``BaseException`` handlers that do
  not re-raise.  Broad catches are legitimate only at boundaries that
  wrap the failure in a ``ReproError`` (so they must contain a
  ``raise``) or that carry an explicit
  ``# reprolint: disable=broad-except`` pragma with a justification.
* **RL203** — ``raise`` of a project-defined class that does not
  provably descend from ``ReproError``, resolved through the
  project-wide class-hierarchy index built from every linted AST.
  Builtin exceptions (``ValueError`` for programming errors) stay
  allowed; unknown third-party classes are skipped.
"""

from __future__ import annotations

import ast

from repro.analysis.base import LintPass, register
from repro.analysis.findings import Rule

__all__ = ["ErrorHierarchyPass", "RL201", "RL202", "RL203"]

RL201 = Rule(
    id="RL201",
    name="bare-except",
    description="Bare 'except:' swallows KeyboardInterrupt/SystemExit.",
)

RL202 = Rule(
    id="RL202",
    name="broad-except",
    description=(
        "'except Exception' must re-raise (usually wrapped in a ReproError) "
        "or carry a justified '# reprolint: disable=broad-except' pragma."
    ),
)

RL203 = Rule(
    id="RL203",
    name="non-repro-raise",
    description=(
        "Raised project-defined exception classes must subclass ReproError "
        "(resolved via the project-wide class-hierarchy index)."
    ),
)

_BROAD = frozenset({"Exception", "BaseException"})


def _exception_names(node: ast.expr | None) -> list[tuple[str, ast.expr]]:
    """Bare class names named in an except clause (handles tuples)."""
    if node is None:
        return []
    if isinstance(node, ast.Tuple):
        return [pair for elt in node.elts for pair in _exception_names(elt)]
    if isinstance(node, ast.Name):
        return [(node.id, node)]
    if isinstance(node, ast.Attribute):
        return [(node.attr, node)]
    return []


@register
class ErrorHierarchyPass(LintPass):
    """Enforce the ReproError contract at every raise and except site."""

    rules = (RL201, RL202, RL203)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(RL201, node, "bare 'except:' clause")
        else:
            broad = [
                name for name, _ in _exception_names(node.type) if name in _BROAD
            ]
            if broad and not self._reraises(node):
                self.report(
                    RL202,
                    node,
                    f"'except {broad[0]}' without re-raise; narrow the type, "
                    "wrap in a ReproError, or justify with a pragma",
                )
        self.generic_visit(node)

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        """True if the handler body contains a raise (not in a nested def)."""
        for stmt in handler.body:
            for child in ast.walk(stmt):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    break
                if isinstance(child, ast.Raise):
                    return True
        return False

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        name: str | None = None
        if isinstance(exc, ast.Name):
            name = exc.id
        elif isinstance(exc, ast.Attribute):
            name = exc.attr
        if name is not None and self.index.is_defined(name):
            if not self.index.is_repro_error(name):
                self.report(
                    RL203,
                    node,
                    f"raise of '{name}', which does not subclass ReproError",
                )
        self.generic_visit(node)
