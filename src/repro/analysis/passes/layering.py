"""RL501 — cross-module layering.

The package graph is a DAG with ``common`` at the bottom and
``core``/``twin``/``artifacts`` at the top.  Each package may import
only from the packages listed for it below (plus itself); ``common``
may import from nothing else, so the foundations never grow an upward
dependency on ``ml``/``sim``/``testbed``.  Root modules (``repro.cli``,
``repro/__init__.py``) sit above every layer and are exempt, as are
files outside a ``repro`` tree.  Override the map per-package with
``[tool.reprolint.layering]`` in ``pyproject.toml``.
"""

from __future__ import annotations

import ast

from repro.analysis.base import LintPass, register
from repro.analysis.findings import Rule

__all__ = ["LayeringPass", "RL501", "DEFAULT_LAYERS"]

RL501 = Rule(
    id="RL501",
    name="layering",
    description=(
        "Package imports outside its allowed layer set (e.g. common/ must "
        "not import from ml/, sim/, or testbed/)."
    ),
)

# package -> repro packages it may import from (itself is always allowed).
DEFAULT_LAYERS: dict[str, tuple[str, ...]] = {
    "common": (),
    "obs": ("common",),
    "analysis": ("common",),
    "data": ("common",),
    "faults": ("common", "obs"),
    "objectstore": ("common", "faults", "obs"),
    "sim": ("common",),
    "net": ("common", "data", "faults", "obs"),
    "ml": ("common", "data"),
    "testbed": ("common", "objectstore"),
    "edge": ("common", "testbed"),
    "inference": ("common", "edge", "ml", "net", "testbed"),
    "serve": (
        "common",
        "edge",
        "faults",
        "inference",
        "ml",
        "net",
        "objectstore",
        "obs",
        "testbed",
    ),
    "vehicle": ("common", "data", "ml", "sim"),
    "extensions": ("common", "sim"),
    "core": (
        "common",
        "data",
        "edge",
        "ml",
        "net",
        "objectstore",
        "obs",
        "sim",
        "testbed",
        "vehicle",
    ),
    "artifacts": ("common", "core"),
    "twin": ("common", "core", "ml", "sim"),
    "fleet": (
        "artifacts",
        "common",
        "data",
        "faults",
        "ml",
        "net",
        "objectstore",
        "obs",
        "serve",
        "testbed",
    ),
    # The evaluation harness scores whole-stack runs, so it sits at the
    # very top: nothing below may import it (only the root modules
    # repro.cli / repro.scenarios, which are layering-exempt, do).
    "eval": (
        "common",
        "core",
        "faults",
        "fleet",
        "net",
        "obs",
        "serve",
        "sim",
        "testbed",
    ),
}


@register
class LayeringPass(LintPass):
    """Flag ``repro.X`` imports that violate the layer DAG."""

    rules = (RL501,)

    def visit_Module(self, node: ast.Module) -> None:
        package = self.ctx.package
        if not package:
            return  # root module or file outside the repro tree
        layers = self.config.layering or DEFAULT_LAYERS
        if package not in layers:
            self.report(
                RL501,
                node,
                f"package '{package}' is not in the layering map; add it to "
                "[tool.reprolint.layering] or DEFAULT_LAYERS",
            )
            return
        self._package = package
        self._allowed = set(layers[package]) | {package}
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check(node, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level > 0:
            module = self._resolve_relative(node.level, module)
        if module == "repro":
            # "from repro import ml" names the package in the alias list.
            for alias in node.names:
                self._check(node, f"repro.{alias.name}")
        else:
            self._check(node, module)

    def _resolve_relative(self, level: int, module: str) -> str:
        """Absolute dotted path of a relative import inside this module."""
        base = self.ctx.module.split(".")
        if self.ctx.path.name != "__init__.py":
            base = base[:-1]
        if level > 1:
            base = base[: len(base) - (level - 1)]
        return ".".join(base + ([module] if module else []))

    def _check(self, node: ast.stmt, module: str) -> None:
        parts = module.split(".")
        if parts[0] != "repro" or len(parts) < 2:
            return
        target = parts[1]
        if target not in self._allowed:
            self.report(
                RL501,
                node,
                f"'{self._package}' may not import from 'repro.{target}' "
                f"(allowed: {', '.join(sorted(self._allowed))})",
            )
