"""RL101/RL102 — RNG discipline.

All randomness flows through :mod:`repro.common.rng`: components accept
a ``seed``/``rng`` argument and normalise it with ``ensure_rng`` (or
derive child streams with ``spawn``).  Direct stream construction
anywhere else — ``np.random.default_rng``, legacy ``np.random.seed``,
the stdlib ``random`` module — forks an unmanaged stream and is the
classic way reproducibility silently erodes.

* **RL101** — any ``numpy.random`` access (except the ``Generator`` /
  ``BitGenerator`` / ``SeedSequence`` types used in annotations and
  ``isinstance`` checks) or any stdlib ``random`` usage outside
  ``common/rng.py``.
* **RL102** — a public callable declares a ``seed`` or ``rng`` parameter
  but never reads it: the caller's carefully-plumbed seed is silently
  dropped.  Interface stubs (docstring/``pass``/``raise``-only bodies)
  and ``abstractmethod``/``overload`` definitions are exempt.
* **RL103** — RNG provenance: a stream bound at module level (via
  ``ensure_rng``/``spawn``/``default_rng``/``Random``) that is drawn
  from by two or more distinct :class:`~repro.common.clock.EventScheduler`
  callbacks, resolved through the project call graph.  Two seeded
  entities sharing one stream means adding a draw to either silently
  perturbs the other — the classic stream-sharing reproducibility bug.
"""

from __future__ import annotations

import ast
from types import SimpleNamespace

from repro.analysis.base import LintPass, register
from repro.analysis.findings import Rule, Severity
from repro.analysis.passes.imports import ImportTracker

__all__ = ["RngPass", "RL101", "RL102", "RL103"]

RL101 = Rule(
    id="RL101",
    name="rng-outside-common",
    description=(
        "Direct numpy.random / stdlib random usage outside common/rng.py; "
        "obtain streams via repro.common.rng.ensure_rng/spawn."
    ),
    default_exclude=("common/rng.py",),
)

RL102 = Rule(
    id="RL102",
    name="seed-ignored",
    description=(
        "A public callable declares a seed/rng parameter but never uses it, "
        "silently dropping the caller's determinism contract."
    ),
    severity=Severity.WARNING,
)

RL103 = Rule(
    id="RL103",
    name="shared-rng-stream",
    description=(
        "A module-level RNG stream is drawn from by multiple scheduler "
        "callbacks (stream sharing); give each entity its own stream via "
        "ensure_rng/spawn."
    ),
)

# numpy.random attributes that are types, not stream constructors —
# legitimate in annotations and isinstance() checks everywhere.
_ALLOWED_NUMPY_ATTRS = frozenset({"Generator", "BitGenerator", "SeedSequence"})
_SEED_PARAMS = frozenset({"seed", "rng"})


@register
class RngPass(LintPass):
    """Flag unmanaged RNG construction and ignored seed parameters."""

    rules = (RL101, RL102, RL103)

    def visit_Module(self, node: ast.Module) -> None:
        self._tracker = ImportTracker(watched=("numpy", "random"))
        self._tracker.collect(node)
        self._class_stack: list[str] = []
        self._report_shared_streams()
        self.generic_visit(node)

    # ------------------------------------------------------------ RL103

    def _report_shared_streams(self) -> None:
        for flow in self.index.graph.flow_findings_for(str(self.ctx.path)):
            if flow.kind != "shared-rng":
                continue
            roots = ", ".join(flow.roots)
            self.report(
                RL103,
                SimpleNamespace(lineno=flow.line, col_offset=flow.col),
                f"module-level RNG stream '{flow.subject}' is drawn from by "
                f"{len(flow.roots)} scheduler callbacks ({roots}); give each "
                "entity its own stream via ensure_rng/spawn",
            )

    # ------------------------------------------------------------ RL101

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module == "random":
            self.report(RL101, node, "import from stdlib 'random' module")
        if node.level == 0 and node.module and (
            node.module == "numpy.random" or node.module.startswith("numpy.random.")
        ):
            for alias in node.names:
                if alias.name not in _ALLOWED_NUMPY_ATTRS:
                    self.report(
                        RL101,
                        node,
                        f"import of 'numpy.random.{alias.name}' "
                        "(use repro.common.rng.ensure_rng)",
                    )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        resolved = self._tracker.resolve(node)
        if resolved is not None:
            if resolved.startswith("numpy.random."):
                tail = resolved.split(".", 2)[2]
                if tail.split(".")[0] not in _ALLOWED_NUMPY_ATTRS:
                    self.report(
                        RL101,
                        node,
                        f"direct '{resolved}' (use repro.common.rng.ensure_rng)",
                    )
                return
            if resolved.startswith("random."):
                self.report(
                    RL101,
                    node,
                    f"stdlib '{resolved}' (use repro.common.rng.ensure_rng)",
                )
                return
        self.generic_visit(node)

    # ------------------------------------------------------------ RL102

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_seed_params(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_seed_params(node)
        self.generic_visit(node)

    def _check_seed_params(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if not self._is_public(node) or self._is_stub(node):
            return
        declared = {
            arg.arg
            for arg in (
                node.args.posonlyargs + node.args.args + node.args.kwonlyargs
            )
            if arg.arg in _SEED_PARAMS
        }
        if not declared:
            return
        used = {
            child.id
            for child in ast.walk(node)
            if isinstance(child, ast.Name)
            and isinstance(child.ctx, ast.Load)
            and child.id in declared
        }
        for param in sorted(declared - used):
            self.report(
                RL102,
                node,
                f"'{node.name}' declares '{param}' but never uses it "
                "(plumb it through ensure_rng/spawn or a callee)",
            )

    def _is_public(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        if any(name.startswith("_") for name in self._class_stack):
            return False
        if node.name == "__init__":
            return True
        return not node.name.startswith("_")

    @staticmethod
    def _is_stub(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        for deco in node.decorator_list:
            spelled = ast.unparse(deco)
            if "abstractmethod" in spelled or "overload" in spelled:
                return True
        return all(
            isinstance(stmt, (ast.Pass, ast.Raise))
            or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
            for stmt in node.body
        )
