"""Import-alias tracking shared by the wall-clock and RNG passes.

Both passes need to answer the same question: "what canonical dotted
path does this expression refer to, given the module's imports?" —
``tm.perf_counter()`` after ``import time as tm`` must resolve to
``time.perf_counter``, and ``default_rng(0)`` after ``from numpy.random
import default_rng`` to ``numpy.random.default_rng``.
"""

from __future__ import annotations

import ast

__all__ = ["ImportTracker", "dotted_name"]


def dotted_name(node: ast.expr) -> str | None:
    """Source-level dotted path of a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ImportTracker:
    """Resolves local names to canonical module paths for ``watched`` roots.

    Only imports whose target starts with one of the watched root
    modules are tracked, so an unrelated local variable named ``time``
    or ``random`` never triggers a false positive.
    """

    def __init__(self, watched: tuple[str, ...]) -> None:
        self.watched = watched
        self._aliases: dict[str, str] = {}  # local name -> canonical path

    def _is_watched(self, target: str) -> bool:
        return any(
            target == root or target.startswith(root + ".") for root in self.watched
        )

    def collect(self, tree: ast.Module) -> None:
        """Record every relevant import binding in the module."""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if not self._is_watched(alias.name):
                        continue
                    if alias.asname is not None:
                        self._aliases[alias.asname] = alias.name
                    else:
                        # "import numpy.random" binds the root name only.
                        root = alias.name.split(".")[0]
                        self._aliases[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    target = f"{node.module}.{alias.name}"
                    if self._is_watched(target):
                        self._aliases[alias.asname or alias.name] = target

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted path of ``node``, or ``None`` if untracked."""
        source = dotted_name(node)
        if source is None:
            return None
        head, _, rest = source.partition(".")
        canonical = self._aliases.get(head)
        if canonical is None:
            return None
        return f"{canonical}.{rest}" if rest else canonical
