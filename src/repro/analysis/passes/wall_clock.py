"""RL001 — the wall-clock ban.

``common/clock.py`` promises that no component in :mod:`repro` reads the
real wall clock: all timing flows through the simulated
:class:`~repro.common.clock.Clock`.  This pass bans every spelling of a
wall-clock read — ``time.time``/``perf_counter``/``monotonic``/...,
``datetime.datetime.now``/``utcnow``/``today``, ``date.today`` — plus
``time.sleep`` (which blocks on real time).  Benchmarks are exempt by
default: measuring real elapsed time is their whole point.
"""

from __future__ import annotations

import ast

from repro.analysis.base import LintPass, register
from repro.analysis.findings import Rule
from repro.analysis.passes.imports import ImportTracker

__all__ = ["WallClockPass", "RL001"]

RL001 = Rule(
    id="RL001",
    name="wall-clock",
    description=(
        "No component reads the real wall clock; use repro.common.clock.Clock. "
        "Banned: time.time/perf_counter/monotonic/process_time/sleep and "
        "datetime now/utcnow/today."
    ),
    default_exclude=("benchmarks/*",),
)

_BANNED = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockPass(LintPass):
    """Flag every reference that resolves to a banned wall-clock callable."""

    rules = (RL001,)

    def visit_Module(self, node: ast.Module) -> None:
        self._tracker = ImportTracker(watched=("time", "datetime"))
        self._tracker.collect(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in ("time", "datetime") and node.level == 0:
            for alias in node.names:
                target = f"{node.module}.{alias.name}"
                if target in _BANNED:
                    self.report(
                        RL001, node, f"import of wall-clock function '{target}'"
                    )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        resolved = self._tracker.resolve(node)
        if resolved in _BANNED:
            self.report(RL001, node, f"wall-clock read via '{resolved}'")
            return  # inner chain cannot also be banned
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        # "from time import perf_counter; perf_counter()" — a bare name
        # bound straight to a banned callable.
        if isinstance(node.ctx, ast.Load):
            resolved = self._tracker.resolve(node)
            if resolved in _BANNED:
                self.report(RL001, node, f"wall-clock read via '{resolved}'")
