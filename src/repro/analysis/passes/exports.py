"""RL301/RL302/RL303 — ``__all__`` consistency.

Every module in the repo declares ``__all__`` — it is the public-API
contract that ``from repro.x import *`` and the docs rely on.  Three
rules keep it honest:

* **RL301** — a name listed in ``__all__`` is not defined at module top
  level (a stale export; star-imports would raise ``AttributeError``).
* **RL302** — a public top-level ``def``/``class`` is missing from
  ``__all__`` (an accidental API; either list it or underscore it).
* **RL303** — a module with public definitions has no ``__all__`` at
  all.  ``__main__.py`` and ``conftest.py`` are exempt by default.

Modules that build ``__all__`` dynamically (concatenation, comprehension)
are skipped: a lint pass should not evaluate code.
"""

from __future__ import annotations

import ast

from repro.analysis.base import LintPass, register
from repro.analysis.findings import Rule, Severity

__all__ = ["ExportsPass", "RL301", "RL302", "RL303"]

RL301 = Rule(
    id="RL301",
    name="all-undefined",
    description="__all__ lists a name not defined at module top level.",
)

RL302 = Rule(
    id="RL302",
    name="all-missing",
    description="Public top-level def/class missing from __all__.",
    severity=Severity.WARNING,
)

RL303 = Rule(
    id="RL303",
    name="missing-all",
    description="Module with public definitions declares no __all__.",
    default_exclude=("*/__main__.py", "__main__.py", "*/conftest.py", "conftest.py"),
)


def _top_level_names(body: list[ast.stmt]) -> set[str]:
    """Names bound at module top level (recursing into if/try blocks)."""
    names: set[str] = set()
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                names.update(_target_names(target))
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            names.update(_target_names(stmt.target))
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                names.add(alias.asname or alias.name)
        elif isinstance(stmt, ast.If):
            names |= _top_level_names(stmt.body) | _top_level_names(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            names |= _top_level_names(stmt.body)
            for handler in stmt.handlers:
                names |= _top_level_names(handler.body)
            names |= _top_level_names(stmt.orelse) | _top_level_names(stmt.finalbody)
    return names


def _target_names(target: ast.expr) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        return {name for elt in target.elts for name in _target_names(elt)}
    return set()


def _public_defs(body: list[ast.stmt]) -> list[ast.stmt]:
    """Public top-level def/class statements (recursing into if/try)."""
    defs: list[ast.stmt] = []
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not stmt.name.startswith("_"):
                defs.append(stmt)
        elif isinstance(stmt, ast.If):
            defs += _public_defs(stmt.body) + _public_defs(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            defs += _public_defs(stmt.body)
    return defs


@register
class ExportsPass(LintPass):
    """Cross-check ``__all__`` against the module's actual top level."""

    rules = (RL301, RL302, RL303)

    def visit_Module(self, node: ast.Module) -> None:
        exported = self._find_all(node)
        public = _public_defs(node.body)
        if exported is None:
            if public:
                self.report(
                    RL303,
                    public[0],
                    f"module defines {len(public)} public name(s) but no __all__",
                )
            return
        defined = _top_level_names(node.body)
        seen: set[str] = set()
        for name_node in exported:
            name = name_node.value
            if name in seen:
                self.report(RL301, name_node, f"duplicate __all__ entry '{name}'")
            seen.add(name)
            if name not in defined:
                self.report(
                    RL301,
                    name_node,
                    f"__all__ lists '{name}', which is not defined in the module",
                )
        for stmt in public:
            if stmt.name not in seen:
                self.report(
                    RL302,
                    stmt,
                    f"public {type(stmt).__name__.replace('Def', '').lower()} "
                    f"'{stmt.name}' is missing from __all__",
                )

    def _find_all(self, node: ast.Module) -> list[ast.Constant] | None:
        """The __all__ string constants, or None if absent/dynamic."""
        for stmt in node.body:
            if not isinstance(stmt, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
            ):
                continue
            if not isinstance(stmt.value, (ast.List, ast.Tuple)):
                return None
            elements: list[ast.Constant] = []
            for elt in stmt.value.elts:
                if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                    return None
                elements.append(elt)
            return elements
        return None
    # visit_Module handles everything; no generic_visit needed (the pass
    # deliberately ignores nested scopes).
