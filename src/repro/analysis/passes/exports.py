"""RL301/RL302/RL303 — ``__all__`` consistency.

Every module in the repo declares ``__all__`` — it is the public-API
contract that ``from repro.x import *`` and the docs rely on.  Three
rules keep it honest:

* **RL301** — a name listed in ``__all__`` is not defined at module top
  level (a stale export; star-imports would raise ``AttributeError``).
* **RL302** — a public top-level ``def``/``class`` is missing from
  ``__all__`` (an accidental API; either list it or underscore it).
* **RL303** — a module with public definitions has no ``__all__`` at
  all.  ``__main__.py`` and ``conftest.py`` are exempt by default.

Modules that build ``__all__`` dynamically (concatenation, comprehension)
are skipped: a lint pass should not evaluate code.
"""

from __future__ import annotations

import ast

from repro.analysis.base import LintPass, register
from repro.analysis.findings import Rule, Severity, TextEdit

__all__ = ["ExportsPass", "RL301", "RL302", "RL303"]

RL301 = Rule(
    id="RL301",
    name="all-undefined",
    description="__all__ lists a name not defined at module top level.",
)

RL302 = Rule(
    id="RL302",
    name="all-missing",
    description="Public top-level def/class missing from __all__.",
    severity=Severity.WARNING,
)

RL303 = Rule(
    id="RL303",
    name="missing-all",
    description="Module with public definitions declares no __all__.",
    default_exclude=("*/__main__.py", "__main__.py", "*/conftest.py", "conftest.py"),
)


def _top_level_names(body: list[ast.stmt]) -> set[str]:
    """Names bound at module top level (recursing into if/try blocks)."""
    names: set[str] = set()
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                names.update(_target_names(target))
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            names.update(_target_names(stmt.target))
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                names.add(alias.asname or alias.name)
        elif isinstance(stmt, ast.If):
            names |= _top_level_names(stmt.body) | _top_level_names(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            names |= _top_level_names(stmt.body)
            for handler in stmt.handlers:
                names |= _top_level_names(handler.body)
            names |= _top_level_names(stmt.orelse) | _top_level_names(stmt.finalbody)
    return names


def _target_names(target: ast.expr) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        return {name for elt in target.elts for name in _target_names(elt)}
    return set()


def _public_defs(body: list[ast.stmt]) -> list[ast.stmt]:
    """Public top-level def/class statements (recursing into if/try)."""
    defs: list[ast.stmt] = []
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not stmt.name.startswith("_"):
                defs.append(stmt)
        elif isinstance(stmt, ast.If):
            defs += _public_defs(stmt.body) + _public_defs(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            defs += _public_defs(stmt.body)
    return defs


@register
class ExportsPass(LintPass):
    """Cross-check ``__all__`` against the module's actual top level."""

    rules = (RL301, RL302, RL303)

    def visit_Module(self, node: ast.Module) -> None:
        found = self._find_all(node)
        public = _public_defs(node.body)
        if found is None:
            if public:
                self.report(
                    RL303,
                    public[0],
                    f"module defines {len(public)} public name(s) but no __all__",
                    fixes=self._insert_all_fix(node, public),
                )
            return
        value, exported = found
        defined = _top_level_names(node.body)
        repair = self._repair_fix(value, exported, defined, public)
        seen: set[str] = set()
        for name_node in exported:
            name = name_node.value
            if name in seen:
                self.report(
                    RL301,
                    name_node,
                    f"duplicate __all__ entry '{name}'",
                    fixes=repair,
                )
            seen.add(name)
            if name not in defined:
                self.report(
                    RL301,
                    name_node,
                    f"__all__ lists '{name}', which is not defined in the module",
                    fixes=repair,
                )
        for stmt in public:
            if stmt.name not in seen:
                self.report(
                    RL302,
                    stmt,
                    f"public {type(stmt).__name__.replace('Def', '').lower()} "
                    f"'{stmt.name}' is missing from __all__",
                    fixes=repair,
                )

    @staticmethod
    def _render_all(names: list[str], indent_col: int = 0) -> str:
        """Canonical list display for a repaired ``__all__``."""
        inner = ", ".join(f'"{name}"' for name in names)
        single = f"[{inner}]"
        if indent_col + len("__all__ = ") + len(single) <= 79:
            return single
        indent = " " * indent_col
        rows = "".join(f'{indent}    "{name}",\n' for name in names)
        return f"[\n{rows}{indent}]"

    def _repair_fix(
        self,
        value: ast.List | ast.Tuple,
        exported: list[ast.Constant],
        defined: set[str],
        public: list[ast.stmt],
    ) -> tuple[TextEdit, ...]:
        """One whole-list edit fixing stale, duplicate, and missing names."""
        listed = {c.value for c in exported}
        kept: list[str] = []
        for constant in exported:
            name = constant.value
            if name in kept or name not in defined:
                continue
            kept.append(name)
        names = kept + [s.name for s in public if s.name not in listed]
        if getattr(value, "end_lineno", None) is None:
            return ()
        return (
            TextEdit(
                start_line=value.lineno,
                start_col=value.col_offset,
                end_line=value.end_lineno,
                end_col=value.end_col_offset,
                replacement=self._render_all(names, indent_col=0),
            ),
        )

    def _insert_all_fix(
        self, node: ast.Module, public: list[ast.stmt]
    ) -> tuple[TextEdit, ...]:
        """Insert a fresh ``__all__`` after the docstring/import block."""
        anchor_line = 1
        for stmt in node.body:
            is_docstring = (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            )
            if is_docstring or isinstance(stmt, (ast.Import, ast.ImportFrom)):
                anchor_line = (stmt.end_lineno or stmt.lineno) + 1
                continue
            break
        names = [s.name for s in public]
        text = f"\n__all__ = {self._render_all(names)}\n"
        return (
            TextEdit(
                start_line=anchor_line,
                start_col=0,
                end_line=anchor_line,
                end_col=0,
                replacement=text,
            ),
        )

    def _find_all(
        self, node: ast.Module
    ) -> tuple[ast.List | ast.Tuple, list[ast.Constant]] | None:
        """The ``__all__`` value node and its string constants, or None.

        ``None`` also covers dynamic ``__all__`` (concatenation,
        comprehension): a lint pass should not evaluate code.
        """
        for stmt in node.body:
            if not isinstance(stmt, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
            ):
                continue
            if not isinstance(stmt.value, (ast.List, ast.Tuple)):
                return None
            elements: list[ast.Constant] = []
            for elt in stmt.value.elts:
                if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                    return None
                elements.append(elt)
            return stmt.value, elements
        return None
    # visit_Module handles everything; no generic_visit needed (the pass
    # deliberately ignores nested scopes).
