"""Parsed-module context and the project-wide index façade.

The runner parses every file once into a :class:`ModuleContext` (AST,
source lines, suppression pragmas, dotted module name) and folds all of
them into a :class:`ProjectIndex` before any pass runs.  Passes that
need whole-program knowledge — the error-hierarchy pass resolving
whether a raised class descends from ``ReproError``, the dataflow pass
chasing scheduler callbacks — query the index, which fronts the import
graph / class hierarchy / call graph in :mod:`repro.analysis.graph`.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.graph import ClassHierarchy, ProjectGraph, extract_shard

__all__ = ["ModuleContext", "ProjectIndex", "parse_pragmas"]

_PRAGMA_RE = re.compile(r"reprolint:\s*disable=([A-Za-z0-9_,\-]+)")


def parse_pragmas(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule specs suppressed on that line.

    Pragmas are comments of the form ``# reprolint: disable=RL001`` (or
    the symbolic rule name, or ``all``); several rules may be listed
    comma-separated.  Only genuine comments count — the pattern inside a
    string literal is ignored, which is why this tokenises instead of
    regex-scanning raw lines.
    """
    pragmas: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if match is None:
                continue
            specs = frozenset(
                spec.strip() for spec in match.group(1).split(",") if spec.strip()
            )
            if specs:
                line = tok.start[0]
                pragmas[line] = pragmas.get(line, frozenset()) | specs
    except tokenize.TokenError:
        pass  # unterminated constructs: the parser reports these, not us
    return pragmas


@dataclass
class ModuleContext:
    """Everything a pass needs to know about one parsed file."""

    path: Path
    source: str
    tree: ast.Module
    module: str  # dotted name, e.g. "repro.sim.tracks" ("" if unknown)
    pragmas: dict[int, frozenset[str]] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """Top-level package under ``repro`` ("" for root modules).

        ``repro.sim.tracks`` -> ``sim``; ``repro/sim/__init__.py`` (whose
        module is ``repro.sim``) -> ``sim``; root modules like
        ``repro.cli`` -> ``""`` (the top layer, exempt from layering).
        """
        parts = self.module.split(".")
        if parts[0] != "repro":
            return ""
        if len(parts) > 2 or (len(parts) == 2 and self.path.name == "__init__.py"):
            return parts[1]
        return ""

    @classmethod
    def from_path(cls, path: Path) -> "ModuleContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            source=source,
            tree=tree,
            module=_dotted_module(path),
            pragmas=parse_pragmas(source),
        )

    def suppressed(self, line: int, rule) -> bool:
        """True if a pragma on ``line`` disables ``rule`` there."""
        specs = self.pragmas.get(line)
        if not specs:
            return False
        return any(rule.matches(spec) for spec in specs)


def _dotted_module(path: Path) -> str:
    """Best-effort dotted module name from a filesystem path.

    Walks up from the file looking for the ``repro`` package root; files
    outside any ``repro`` tree (test fixtures in temp dirs) get just
    their stem, which disables the package-aware rules for them.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in range(len(parts) - 1, -1, -1):
        if parts[anchor] == "repro":
            return ".".join(parts[anchor:])
    return parts[-1] if parts else ""


class ProjectIndex:
    """Whole-program knowledge shared by every pass.

    Thin façade over :class:`repro.analysis.graph.ProjectGraph`: each
    linted file is condensed into a :class:`~repro.analysis.graph.ModuleShard`
    (either extracted from its AST or rehydrated from the incremental
    cache) and folded into the project-wide class hierarchy, import
    graph, and call graph.  The class-hierarchy helpers RL203 relies on
    (:meth:`is_defined`, :meth:`is_repro_error`) delegate to the single
    :class:`~repro.analysis.graph.ClassHierarchy` so the resolution
    logic exists exactly once.
    """

    def __init__(self) -> None:
        self.graph = ProjectGraph()
        self.modules: set[str] = set()

    @property
    def classes(self) -> dict[str, set[str]]:
        """Bare class name -> bare base names (the hierarchy's table)."""
        return self.graph.hierarchy.classes

    def add_module(self, ctx: ModuleContext) -> None:
        self.add_shard(extract_shard(str(ctx.path), ctx.module, ctx.tree))

    def add_shard(self, shard) -> None:
        """Fold an already-extracted (possibly cached) shard in."""
        if shard.module:
            self.modules.add(shard.module)
        self.graph.add_shard(shard)

    def is_defined(self, name: str) -> bool:
        """True if a class of this name is defined somewhere in the project."""
        return self.graph.hierarchy.is_defined(name)

    def is_repro_error(self, name: str) -> bool:
        """True if ``name`` transitively subclasses ``ReproError``."""
        return self.graph.hierarchy.is_repro_error(name)

    @staticmethod
    def is_builtin_exception(name: str) -> bool:
        """True if ``name`` is a builtin exception class (always allowed)."""
        return ClassHierarchy.is_builtin_exception(name)
