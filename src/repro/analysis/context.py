"""Parsed-module context and the project-wide class-hierarchy index.

The runner parses every file once into a :class:`ModuleContext` (AST,
source lines, suppression pragmas, dotted module name) and folds all of
them into a :class:`ProjectIndex` before any pass runs.  Passes that
need whole-program knowledge — the error-hierarchy pass resolving
whether a raised class descends from ``ReproError`` — query the index
instead of re-walking other files.
"""

from __future__ import annotations

import ast
import builtins
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ModuleContext", "ProjectIndex", "parse_pragmas"]

_PRAGMA_RE = re.compile(r"reprolint:\s*disable=([A-Za-z0-9_,\-]+)")


def parse_pragmas(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule specs suppressed on that line.

    Pragmas are comments of the form ``# reprolint: disable=RL001`` (or
    the symbolic rule name, or ``all``); several rules may be listed
    comma-separated.  Only genuine comments count — the pattern inside a
    string literal is ignored, which is why this tokenises instead of
    regex-scanning raw lines.
    """
    pragmas: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if match is None:
                continue
            specs = frozenset(
                spec.strip() for spec in match.group(1).split(",") if spec.strip()
            )
            if specs:
                line = tok.start[0]
                pragmas[line] = pragmas.get(line, frozenset()) | specs
    except tokenize.TokenError:
        pass  # unterminated constructs: the parser reports these, not us
    return pragmas


@dataclass
class ModuleContext:
    """Everything a pass needs to know about one parsed file."""

    path: Path
    source: str
    tree: ast.Module
    module: str  # dotted name, e.g. "repro.sim.tracks" ("" if unknown)
    pragmas: dict[int, frozenset[str]] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """Top-level package under ``repro`` ("" for root modules).

        ``repro.sim.tracks`` -> ``sim``; ``repro/sim/__init__.py`` (whose
        module is ``repro.sim``) -> ``sim``; root modules like
        ``repro.cli`` -> ``""`` (the top layer, exempt from layering).
        """
        parts = self.module.split(".")
        if parts[0] != "repro":
            return ""
        if len(parts) > 2 or (len(parts) == 2 and self.path.name == "__init__.py"):
            return parts[1]
        return ""

    @classmethod
    def from_path(cls, path: Path) -> "ModuleContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            source=source,
            tree=tree,
            module=_dotted_module(path),
            pragmas=parse_pragmas(source),
        )

    def suppressed(self, line: int, rule) -> bool:
        """True if a pragma on ``line`` disables ``rule`` there."""
        specs = self.pragmas.get(line)
        if not specs:
            return False
        return any(rule.matches(spec) for spec in specs)


def _dotted_module(path: Path) -> str:
    """Best-effort dotted module name from a filesystem path.

    Walks up from the file looking for the ``repro`` package root; files
    outside any ``repro`` tree (test fixtures in temp dirs) get just
    their stem, which disables the package-aware rules for them.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in range(len(parts) - 1, -1, -1):
        if parts[anchor] == "repro":
            return ".".join(parts[anchor:])
    return parts[-1] if parts else ""


class ProjectIndex:
    """Class hierarchy and module inventory across every linted file.

    ``classes`` maps a bare class name to the set of bare base-class
    names seen anywhere in the project (a class defined twice merges its
    bases — acceptable for a lint pass; the repo keeps class names
    unique).  :meth:`is_repro_error` answers whether a class *provably*
    descends from ``ReproError`` through project-defined classes.
    """

    def __init__(self) -> None:
        self.classes: dict[str, set[str]] = {}
        self.modules: set[str] = set()
        self._repro_cache: dict[str, bool] = {}

    def add_module(self, ctx: ModuleContext) -> None:
        if ctx.module:
            self.modules.add(ctx.module)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = self.classes.setdefault(node.name, set())
            for base in node.bases:
                name = _base_name(base)
                if name is not None:
                    bases.add(name)
        self._repro_cache.clear()

    def is_defined(self, name: str) -> bool:
        """True if a class of this name is defined somewhere in the project."""
        return name in self.classes

    def is_repro_error(self, name: str, _seen: frozenset[str] = frozenset()) -> bool:
        """True if ``name`` transitively subclasses ``ReproError``."""
        if name == "ReproError":
            return True
        if name in self._repro_cache:
            return self._repro_cache[name]
        if name in _seen or name not in self.classes:
            return False
        result = any(
            self.is_repro_error(base, _seen | {name})
            for base in self.classes[name]
        )
        self._repro_cache[name] = result
        return result

    @staticmethod
    def is_builtin_exception(name: str) -> bool:
        """True if ``name`` is a builtin exception class (always allowed)."""
        obj = getattr(builtins, name, None)
        return isinstance(obj, type) and issubclass(obj, BaseException)


def _base_name(node: ast.expr) -> str | None:
    """Bare class name of a base expression (``errors.TubError`` -> ``TubError``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):  # Generic[...] bases
        return _base_name(node.value)
    return None
