"""The lint driver: collect files, build the index, run every pass.

Two-phase on purpose: every file is parsed and folded into the
:class:`~repro.analysis.context.ProjectIndex` *before* any pass runs,
so whole-program rules (the ``ReproError`` hierarchy check) see classes
defined in files that happen to sort later.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import all_passes
from repro.analysis.config import LintConfig, match_path
from repro.analysis.context import (
    ModuleContext,
    ProjectIndex,
    _dotted_module,
    parse_pragmas,
)
from repro.analysis.findings import Finding, Rule, Severity

__all__ = ["LintResult", "lint_paths", "lint_source", "collect_files", "RL000"]

RL000 = Rule(
    id="RL000",
    name="parse-error",
    description="The file could not be parsed as Python.",
)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def error_count(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warning_count(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.WARNING)


def collect_files(
    paths: list[Path | str], config: LintConfig | None = None
) -> list[Path]:
    """Expand files/directories into the sorted list of lintable files."""
    config = config or LintConfig()
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if match_path(candidate, config.exclude):
                continue
            files.append(candidate)
    return files


def lint_paths(
    paths: list[Path | str], config: LintConfig | None = None
) -> LintResult:
    """Lint ``paths`` (files or directories) and return sorted findings."""
    config = config or LintConfig()
    result = LintResult()
    contexts: list[ModuleContext] = []
    index = ProjectIndex()
    for path in collect_files(paths, config):
        try:
            ctx = ModuleContext.from_path(path)
        except OSError as exc:
            result.findings.append(
                Finding(
                    path=str(path),
                    line=1,
                    col=0,
                    rule_id=RL000.id,
                    rule_name=RL000.name,
                    severity=Severity.ERROR,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        except SyntaxError as exc:
            result.findings.append(
                Finding(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule_id=RL000.id,
                    rule_name=RL000.name,
                    severity=Severity.ERROR,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        contexts.append(ctx)
        index.add_module(ctx)
    result.files_checked = len(contexts)
    for ctx in contexts:
        for pass_cls in all_passes():
            result.findings.extend(pass_cls(ctx, index, config).run())
    result.findings.sort()
    return result


def lint_source(
    source: str,
    filename: str = "snippet.py",
    config: LintConfig | None = None,
    extra_sources: dict[str, str] | None = None,
) -> list[Finding]:
    """Lint an in-memory source string (the unit-test entry point).

    ``extra_sources`` maps filenames to additional file contents folded
    into the project index (but not themselves linted) — used to test
    cross-file resolution such as the class-hierarchy index.
    """
    config = config or LintConfig()
    index = ProjectIndex()
    tree = ast.parse(source, filename=filename)
    ctx = ModuleContext(
        path=Path(filename),
        source=source,
        tree=tree,
        module=_dotted_module(Path(filename)),
        pragmas=parse_pragmas(source),
    )
    index.add_module(ctx)
    for name, text in (extra_sources or {}).items():
        extra = ModuleContext(
            path=Path(name),
            source=text,
            tree=ast.parse(text, filename=name),
            module=_dotted_module(Path(name)),
        )
        index.add_module(extra)
    findings: list[Finding] = []
    for pass_cls in all_passes():
        findings.extend(pass_cls(ctx, index, config).run())
    findings.sort()
    return findings
