"""The lint driver: collect files, build the index, run every pass.

Two-phase on purpose: every file is parsed and folded into the
:class:`~repro.analysis.context.ProjectIndex` *before* any pass runs,
so whole-program rules (the ``ReproError`` hierarchy check) see classes
defined in files that happen to sort later.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import all_passes
from repro.analysis.cache import LintCache
from repro.analysis.config import LintConfig, match_path
from repro.analysis.context import (
    ModuleContext,
    ProjectIndex,
    _dotted_module,
    parse_pragmas,
)
from repro.analysis.findings import Finding, Rule, Severity
from repro.analysis.graph import ModuleShard, extract_shard

__all__ = ["LintResult", "lint_paths", "lint_source", "collect_files", "RL000"]

RL000 = Rule(
    id="RL000",
    name="parse-error",
    description="The file could not be parsed as Python.",
)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def error_count(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warning_count(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.WARNING)


def collect_files(
    paths: list[Path | str], config: LintConfig | None = None
) -> list[Path]:
    """Expand files/directories into the sorted list of lintable files."""
    config = config or LintConfig()
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if match_path(candidate, config.exclude):
                continue
            files.append(candidate)
    return files


def _context_from_source(path: Path, source: str) -> ModuleContext:
    tree = ast.parse(source, filename=str(path))
    return ModuleContext(
        path=path,
        source=source,
        tree=tree,
        module=_dotted_module(path),
        pragmas=parse_pragmas(source),
    )


def lint_paths(
    paths: list[Path | str],
    config: LintConfig | None = None,
    cache_dir: Path | str | None = None,
) -> LintResult:
    """Lint ``paths`` (files or directories) and return sorted findings.

    With ``cache_dir`` set, per-file shards and findings are reused from
    (and written back to) the incremental cache in that directory; a
    warm run over an unchanged tree parses nothing.  The cache never
    changes results — see :mod:`repro.analysis.cache`.
    """
    config = config or LintConfig()
    cache = LintCache.load(cache_dir, config) if cache_dir is not None else None
    result = LintResult()
    files = collect_files(paths, config)
    index = ProjectIndex()
    contexts: dict[str, ModuleContext] = {}
    raw_bytes: dict[str, bytes] = {}
    digests: dict[str, str] = {}
    shard_jsons: dict[str, dict] = {}
    errored: dict[str, Finding] = {}

    # Phase 1: fold every file's shard into the project index — from the
    # cache when the content hash matches, from a fresh parse otherwise.
    for path in files:
        key = str(path)
        try:
            raw = path.read_bytes()
        except OSError as exc:
            errored[key] = Finding(
                path=key,
                line=1,
                col=0,
                rule_id=RL000.id,
                rule_name=RL000.name,
                severity=Severity.ERROR,
                message=f"cannot read file: {exc}",
            )
            continue
        digest = hashlib.sha256(raw).hexdigest()
        digests[key] = digest
        cached_shard = (
            cache.shard_json(key, digest) if cache is not None else None
        )
        if cached_shard is not None:
            index.add_shard(ModuleShard.from_json(cached_shard))
            shard_jsons[key] = cached_shard
            raw_bytes[key] = raw  # parsed lazily only on a findings miss
            continue
        try:
            ctx = _context_from_source(path, raw.decode("utf-8"))
        except SyntaxError as exc:
            errored[key] = Finding(
                path=key,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id=RL000.id,
                rule_name=RL000.name,
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
            )
            del digests[key]
            continue
        contexts[key] = ctx
        shard = extract_shard(key, ctx.module, ctx.tree)
        index.add_shard(shard)
        if cache is not None:
            shard_jsons[key] = shard.to_json()

    # Cross-module rules may re-judge an unchanged file when any other
    # file changes, so cached findings are keyed by a fingerprint over
    # the whole shard set.
    fingerprint = ""
    if cache is not None:
        canonical = json.dumps(
            [shard_jsons[k] for k in sorted(shard_jsons)], sort_keys=True
        )
        fingerprint = hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # Phase 2: per-file findings — cached when file + project state match.
    result.files_checked = len(digests)
    for path in files:
        key = str(path)
        if key in errored:
            result.findings.append(errored[key])
            continue
        if key not in digests:
            continue
        if cache is not None:
            cached = cache.findings_for(key, digests[key], fingerprint)
            if cached is not None:
                result.findings.extend(cached)
                continue
        ctx = contexts.get(key)
        if ctx is None:
            # Shard came from cache but findings did not; the digest
            # matched a previously-parsed state, so this parse succeeds.
            ctx = _context_from_source(path, raw_bytes[key].decode("utf-8"))
            contexts[key] = ctx
        file_findings: list[Finding] = []
        for pass_cls in all_passes():
            file_findings.extend(pass_cls(ctx, index, config).run())
        result.findings.extend(file_findings)
        if cache is not None:
            cache.store_findings(key, digests[key], fingerprint, file_findings)
    if cache is not None:
        for key, shard_json in shard_jsons.items():
            cache.store_shard(key, digests[key], shard_json)
        cache.save()
    result.findings.sort()
    return result


def lint_source(
    source: str,
    filename: str = "snippet.py",
    config: LintConfig | None = None,
    extra_sources: dict[str, str] | None = None,
) -> list[Finding]:
    """Lint an in-memory source string (the unit-test entry point).

    ``extra_sources`` maps filenames to additional file contents folded
    into the project index (but not themselves linted) — used to test
    cross-file resolution such as the class-hierarchy index.
    """
    config = config or LintConfig()
    index = ProjectIndex()
    tree = ast.parse(source, filename=filename)
    ctx = ModuleContext(
        path=Path(filename),
        source=source,
        tree=tree,
        module=_dotted_module(Path(filename)),
        pragmas=parse_pragmas(source),
    )
    index.add_module(ctx)
    for name, text in (extra_sources or {}).items():
        extra = ModuleContext(
            path=Path(name),
            source=text,
            tree=ast.parse(text, filename=name),
            module=_dotted_module(Path(name)),
        )
        index.add_module(extra)
    findings: list[Finding] = []
    for pass_cls in all_passes():
        findings.extend(pass_cls(ctx, index, config).run())
    findings.sort()
    return findings
