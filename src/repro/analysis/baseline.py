"""Baseline files: land a new rule warn-free today, ratchet tomorrow.

A baseline (``.reprolint-baseline.json``, checked in next to
``pyproject.toml``) is a multiset of known findings.  A lint run with a
baseline subtracts matched findings from its report, so a new rule can
be enabled immediately — existing debt goes into the baseline, **new**
violations still fail CI — and the file is ratcheted down as debt is
paid (``--update-baseline`` rewrites it from the current tree).

Matching is by ``(path, rule, message)``, deliberately ignoring
line/column so unrelated edits above a baselined finding do not
resurrect it.  Duplicate findings are counted: if the baseline holds
one ``RL401`` in a file and a second appears, the second is reported.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.errors import ConfigurationError

from repro.analysis.findings import Finding
from repro.analysis.runner import LintResult

__all__ = ["BASELINE_FILENAME", "Baseline", "apply_baseline", "write_baseline"]

BASELINE_FILENAME = ".reprolint-baseline.json"

_FORMAT_VERSION = 1


def _key(finding: Finding) -> tuple[str, str, str]:
    return (finding.path, finding.rule_id, finding.message)


@dataclass
class Baseline:
    """The parsed baseline: a counted multiset of accepted findings."""

    entries: Counter = field(default_factory=Counter)

    def __len__(self) -> int:
        return sum(self.entries.values())

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        """Read a baseline file (missing file -> empty baseline)."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"unparseable baseline at {path}: {exc}"
            ) from exc
        if not isinstance(payload, dict) or "findings" not in payload:
            raise ConfigurationError(
                f"baseline at {path} has no 'findings' list"
            )
        entries: Counter = Counter()
        for row in payload["findings"]:
            try:
                entries[(row["path"], row["rule"], row["message"])] += 1
            except (TypeError, KeyError) as exc:
                raise ConfigurationError(
                    f"malformed baseline entry in {path}: {row!r}"
                ) from exc
        return cls(entries=entries)


def apply_baseline(
    result: LintResult, baseline: Baseline
) -> tuple[LintResult, int]:
    """Subtract baselined findings; return (filtered result, matched count)."""
    remaining = Counter(baseline.entries)
    kept: list[Finding] = []
    matched = 0
    for finding in result.findings:
        key = _key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            matched += 1
        else:
            kept.append(finding)
    filtered = LintResult(findings=kept, files_checked=result.files_checked)
    return filtered, matched


def write_baseline(path: Path | str, result: LintResult) -> int:
    """Persist the current findings as the new baseline; return the count."""
    rows = [
        {"path": f.path, "rule": f.rule_id, "message": f.message}
        for f in result.findings
    ]
    rows.sort(key=lambda r: (r["path"], r["rule"], r["message"]))
    payload = {"version": _FORMAT_VERSION, "findings": rows}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(rows)
