"""The incremental lint cache: content-hash keyed shards and findings.

A cold full-tree lint parses and visits every file.  Almost all of that
work is redundant run to run, so the cache persists two things per file,
keyed by the SHA-256 of its bytes:

* its :class:`~repro.analysis.graph.ModuleShard` — enough to rebuild the
  whole-program :class:`~repro.analysis.graph.ProjectGraph` without
  re-parsing unchanged files;
* its post-suppression findings, additionally keyed by the **index
  fingerprint** (a hash over every shard in the run) — cross-module
  rules (RL203, RL603, RL103) may change their verdict about an
  *unchanged* file when *another* file changes, so findings are only
  reused while the whole-program picture is identical.

The cache self-invalidates on any config change (fingerprint over the
resolved :class:`~repro.analysis.config.LintConfig`) and on any change
to the pass suite (fingerprint over the rule catalog plus
:data:`ANALYSIS_VERSION`, which is bumped when pass semantics change
without changing rule metadata).  Corrupt or mismatched cache files are
discarded silently — a cache must never change lint results, only
their latency.

Fix spans are *not* cached; ``--fix`` runs bypass the cache entirely.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

from repro.analysis.base import all_passes, all_rules
from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding

__all__ = [
    "ANALYSIS_VERSION",
    "CACHE_FILENAME",
    "LintCache",
    "config_fingerprint",
    "passes_fingerprint",
]

# Bump when pass semantics change in a way rule metadata does not capture.
ANALYSIS_VERSION = "2.0.0"

CACHE_FILENAME = "reprolint-cache.json"

_FORMAT_VERSION = 1


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def passes_fingerprint() -> str:
    """Hash of the registered pass suite and rule catalog."""
    catalog = {
        "version": ANALYSIS_VERSION,
        "passes": sorted(cls.__name__ for cls in all_passes()),
        "rules": [
            {
                "id": rule.id,
                "name": rule.name,
                "description": rule.description,
                "severity": str(rule.severity),
                "default_exclude": list(rule.default_exclude),
            }
            for rule in all_rules()
        ],
    }
    return _digest(json.dumps(catalog, sort_keys=True))


def config_fingerprint(config: LintConfig) -> str:
    """Hash of the fully-resolved lint configuration."""
    canonical = asdict(config)
    return _digest(json.dumps(canonical, sort_keys=True, default=list))


class LintCache:
    """One cache directory holding one JSON document."""

    def __init__(self, directory: Path, config: LintConfig) -> None:
        self.directory = Path(directory)
        self.path = self.directory / CACHE_FILENAME
        self._passes_fp = passes_fingerprint()
        self._config_fp = config_fingerprint(config)
        self._files: dict[str, dict] = {}
        self._seen: set[str] = set()

    @classmethod
    def load(cls, directory: Path | str, config: LintConfig) -> "LintCache":
        """Open (or initialise) the cache; mismatches start empty."""
        cache = cls(Path(directory), config)
        try:
            payload = json.loads(cache.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return cache
        if (
            not isinstance(payload, dict)
            or payload.get("format") != _FORMAT_VERSION
            or payload.get("passes") != cache._passes_fp
            or payload.get("config") != cache._config_fp
        ):
            return cache
        files = payload.get("files")
        if isinstance(files, dict):
            cache._files = files
        return cache

    # ------------------------------------------------------------ reads

    def shard_json(self, path: str, digest: str) -> dict | None:
        """The cached shard for ``path`` if its content hash matches."""
        entry = self._files.get(path)
        if entry and entry.get("digest") == digest and entry.get("shard"):
            self._seen.add(path)
            return entry["shard"]
        return None

    def findings_for(
        self, path: str, digest: str, fingerprint: str
    ) -> list[Finding] | None:
        """Cached findings for ``path`` under the current project state."""
        entry = self._files.get(path)
        if (
            entry
            and entry.get("digest") == digest
            and entry.get("fingerprint") == fingerprint
            and entry.get("findings") is not None
        ):
            self._seen.add(path)
            return [Finding.from_dict(row) for row in entry["findings"]]
        return None

    # ----------------------------------------------------------- writes

    def store_shard(self, path: str, digest: str, shard_json: dict) -> None:
        entry = self._files.get(path)
        if entry is None or entry.get("digest") != digest:
            entry = {"digest": digest, "shard": shard_json}
            self._files[path] = entry
        else:
            entry["shard"] = shard_json
        self._seen.add(path)

    def store_findings(
        self, path: str, digest: str, fingerprint: str, findings: list[Finding]
    ) -> None:
        entry = self._files.setdefault(path, {"digest": digest})
        if entry.get("digest") != digest:
            entry.clear()
            entry["digest"] = digest
        entry["fingerprint"] = fingerprint
        entry["findings"] = [f.to_dict() for f in findings]
        self._seen.add(path)

    def save(self) -> None:
        """Persist entries for files seen this run (stale paths pruned)."""
        files = {
            path: entry
            for path, entry in self._files.items()
            if path in self._seen
        }
        payload = {
            "format": _FORMAT_VERSION,
            "passes": self._passes_fp,
            "config": self._config_fp,
            "files": files,
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            self.path.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            pass  # an unwritable cache must not fail the lint run
