"""Configuration for ``reprolint``, loaded from ``[tool.reprolint]``.

Example ``pyproject.toml``::

    [tool.reprolint]
    include = ["src/repro"]        # default lint roots for the CLI
    disable = ["RL302"]            # rules switched off everywhere
    exclude = ["**/generated/**"]  # paths never linted

    [tool.reprolint.rules.RL001]
    exclude = ["benchmarks/*"]     # per-rule path exemptions
    severity = "warning"

    [tool.reprolint.layering]      # override the import-layer DAG
    sim = ["common", "data"]

Path globs match against the file's POSIX path; a pattern without a
leading ``*`` also matches as a suffix, so ``benchmarks/*`` exempts
``/any/prefix/benchmarks/foo.py``.
"""

from __future__ import annotations

import fnmatch
import tomllib
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.errors import ConfigurationError

__all__ = ["RuleConfig", "LintConfig", "match_path"]


def match_path(path: Path | str, patterns: tuple[str, ...] | list[str]) -> bool:
    """True if ``path`` matches any glob (full-path or suffix match)."""
    posix = Path(path).as_posix()
    for pattern in patterns:
        if fnmatch.fnmatch(posix, pattern) or fnmatch.fnmatch(posix, "*/" + pattern):
            return True
    return False


@dataclass(frozen=True)
class RuleConfig:
    """Per-rule overrides from ``[tool.reprolint.rules.<id>]``."""

    enabled: bool = True
    severity: str | None = None
    exclude: tuple[str, ...] = ()


@dataclass(frozen=True)
class LintConfig:
    """The resolved ``[tool.reprolint]`` section."""

    include: tuple[str, ...] = ("src/repro",)
    select: tuple[str, ...] = ()  # empty = all rules
    disable: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    rules: dict[str, RuleConfig] = field(default_factory=dict)
    layering: dict[str, tuple[str, ...]] | None = None

    @classmethod
    def from_pyproject(cls, path: Path | str) -> "LintConfig":
        """Load config from a ``pyproject.toml`` (missing section -> defaults)."""
        raw = Path(path).read_bytes()
        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except tomllib.TOMLDecodeError as exc:
            raise ConfigurationError(f"unparseable pyproject at {path}: {exc}") from exc
        section = data.get("tool", {}).get("reprolint", {})
        return cls.from_dict(section)

    @classmethod
    def from_dict(cls, section: dict) -> "LintConfig":
        """Build a config from an already-parsed ``[tool.reprolint]`` table."""
        rules: dict[str, RuleConfig] = {}
        for rule_id, table in section.get("rules", {}).items():
            if not isinstance(table, dict):
                raise ConfigurationError(
                    f"[tool.reprolint.rules.{rule_id}] must be a table"
                )
            severity = table.get("severity")
            if severity not in (None, "error", "warning"):
                raise ConfigurationError(
                    f"rule {rule_id}: severity must be 'error' or 'warning', "
                    f"got {severity!r}"
                )
            rules[rule_id] = RuleConfig(
                enabled=bool(table.get("enabled", True)),
                severity=severity,
                exclude=tuple(table.get("exclude", ())),
            )
        layering = section.get("layering")
        if layering is not None:
            layering = {
                package: tuple(allowed) for package, allowed in layering.items()
            }
        return cls(
            include=tuple(section.get("include", ("src/repro",))),
            select=tuple(section.get("select", ())),
            disable=tuple(section.get("disable", ())),
            exclude=tuple(section.get("exclude", ())),
            rules=rules,
            layering=layering,
        )

    def rule_config(self, rule) -> RuleConfig:
        """The override table for ``rule`` (matched by ID or name)."""
        for key, override in self.rules.items():
            if rule.matches(key):
                return override
        return RuleConfig()

    def rule_applies(self, rule, path: Path | str) -> bool:
        """True if ``rule`` is enabled for the file at ``path``."""
        if self.select and not any(rule.matches(spec) for spec in self.select):
            return False
        if any(rule.matches(spec) for spec in self.disable):
            return False
        override = self.rule_config(rule)
        if not override.enabled:
            return False
        if match_path(path, rule.default_exclude + override.exclude):
            return False
        return True

    def severity_for(self, rule):
        """Effective severity for ``rule`` after config overrides."""
        from repro.analysis.findings import Severity

        override = self.rule_config(rule)
        if override.severity is not None:
            return Severity(override.severity)
        return rule.severity
