"""The ``LintPass`` base class and the pass/rule registries.

A pass is an :class:`ast.NodeVisitor` instantiated once per file.  It
declares the :class:`~repro.analysis.findings.Rule` objects it can emit;
:meth:`LintPass.report` funnels every emission through the shared
suppression logic (global disables, per-rule path exemptions, inline
``# reprolint: disable=...`` pragmas) so individual passes only contain
detection logic.
"""

from __future__ import annotations

import ast

from repro.analysis.config import LintConfig
from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.findings import Finding, Rule

__all__ = ["LintPass", "register", "all_passes", "all_rules", "find_rule"]

_REGISTRY: list[type["LintPass"]] = []


def register(cls: type["LintPass"]) -> type["LintPass"]:
    """Class decorator adding a pass to the global registry."""
    if not cls.rules:
        raise ValueError(f"pass {cls.__name__} declares no rules")
    _REGISTRY.append(cls)
    return cls


def all_passes() -> tuple[type["LintPass"], ...]:
    """Every registered pass class, in registration order."""
    from repro.analysis import passes  # noqa: F401  (triggers registration)

    return tuple(_REGISTRY)


def all_rules() -> tuple[Rule, ...]:
    """Every rule of every registered pass, sorted by rule ID."""
    return tuple(
        sorted(
            (rule for cls in all_passes() for rule in cls.rules),
            key=lambda rule: rule.id,
        )
    )


def find_rule(spec: str) -> Rule | None:
    """Look up a rule by ID or symbolic name."""
    for rule in all_rules():
        if spec in (rule.id, rule.name):
            return rule
    return None


class LintPass(ast.NodeVisitor):
    """Base class for one lint pass over one module.

    Subclasses declare ``rules`` and implement ``visit_*`` methods that
    call :meth:`report`.  A pass may emit several distinct rules (the
    error-hierarchy pass covers bare excepts, broad excepts, and
    non-``ReproError`` raises).
    """

    rules: tuple[Rule, ...] = ()

    def __init__(
        self,
        ctx: ModuleContext,
        index: ProjectIndex,
        config: LintConfig,
    ) -> None:
        self.ctx = ctx
        self.index = index
        self.config = config
        self.findings: list[Finding] = []

    def run(self) -> list[Finding]:
        """Visit the module and return this pass's findings."""
        if any(self.config.rule_applies(rule, self.ctx.path) for rule in self.rules):
            self.visit(self.ctx.tree)
        return self.findings

    def report(
        self,
        rule: Rule,
        node: ast.AST,
        message: str,
        fixes: tuple = (),
    ) -> None:
        """Emit a finding at ``node`` unless suppressed.

        ``fixes`` carries the :class:`~repro.analysis.findings.TextEdit`
        spans a ``--fix`` run would apply to resolve the finding.
        """
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if not self.config.rule_applies(rule, self.ctx.path):
            return
        if self.ctx.suppressed(line, rule):
            return
        self.findings.append(
            Finding(
                path=str(self.ctx.path),
                line=line,
                col=col,
                rule_id=rule.id,
                rule_name=rule.name,
                severity=self.config.severity_for(rule),
                message=message,
                fixes=tuple(fixes),
            )
        )
