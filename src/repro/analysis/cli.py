"""Command-line front end for ``reprolint``.

Invoked three ways, all sharing :func:`main`:

* ``python -m repro.analysis [paths...]``
* ``autolearn lint [paths...]`` (the subcommand in :mod:`repro.cli`)
* programmatically, ``main(["src/repro", "--format", "json"])``.

Exit status is 0 when clean and 1 when any finding survives
suppression — suitable for CI.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.analysis.base import all_rules, find_rule
from repro.analysis.config import LintConfig
from repro.analysis.reporters import REPORTERS
from repro.analysis.runner import lint_paths

__all__ = ["main", "build_parser", "add_lint_arguments", "run_lint_command"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based invariant linter for the AutoLearn reproduction",
    )
    add_lint_arguments(parser)
    return parser


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint CLI surface on ``parser`` (shared with autolearn)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: [tool.reprolint] include)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--pyproject",
        default=None,
        help="pyproject.toml to read [tool.reprolint] from "
        "(default: nearest pyproject.toml above the first path)",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULE",
        help="disable a rule by ID or name (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule and exit",
    )


def _find_pyproject(start: Path) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for candidate in [node, *node.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def _list_rules() -> str:
    rows = [f"{'ID':6s} {'severity':8s} {'name':18s} description"]
    for rule in all_rules():
        rows.append(
            f"{rule.id:6s} {str(rule.severity):8s} {rule.name:18s} "
            f"{rule.description}"
        )
    return "\n".join(rows)


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        print(_list_rules())
        return 0
    unknown = [spec for spec in args.disable if find_rule(spec) is None]
    if unknown:
        print(
            f"reprolint: unknown rule(s) in --disable: {', '.join(unknown)} "
            "(see --list-rules)"
        )
        return 2
    if args.pyproject is not None:
        config = LintConfig.from_pyproject(args.pyproject)
    else:
        anchor = Path(args.paths[0]) if args.paths else Path.cwd()
        pyproject = _find_pyproject(anchor)
        config = (
            LintConfig.from_pyproject(pyproject)
            if pyproject is not None
            else LintConfig()
        )
    if args.disable:
        config = LintConfig(
            include=config.include,
            disable=config.disable + tuple(args.disable),
            exclude=config.exclude,
            rules=config.rules,
            layering=config.layering,
        )
    paths = args.paths or list(config.include)
    result = lint_paths(paths, config)
    print(REPORTERS[args.format](result))
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.analysis``."""
    return run_lint_command(build_parser().parse_args(argv))
