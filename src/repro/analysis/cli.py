"""Command-line front end for ``reprolint``.

Invoked three ways, all sharing :func:`main`:

* ``python -m repro.analysis [paths...]``
* ``autolearn lint [paths...]`` (the subcommand in :mod:`repro.cli`)
* programmatically, ``main(["src/repro", "--format", "json"])``.

Exit-code contract (stable; CI depends on it):

* **0** — the tree is clean (no finding survived pragmas, config, and
  the baseline), or ``--fix`` left it clean, or ``--update-baseline``
  rewrote the baseline.
* **1** — at least one finding survived.
* **2** — usage or configuration error: unknown rule in
  ``--select``/``--ignore``/``--disable``, unparseable pyproject or
  baseline file.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

from repro.common.errors import ConfigurationError

from repro.analysis.base import all_rules, find_rule
from repro.analysis.baseline import (
    BASELINE_FILENAME,
    Baseline,
    apply_baseline,
    write_baseline,
)
from repro.analysis.config import LintConfig
from repro.analysis.fixes import fix_paths
from repro.analysis.reporters import REPORTERS
from repro.analysis.runner import lint_paths

__all__ = ["main", "build_parser", "add_lint_arguments", "run_lint_command"]

CACHE_DIRNAME = ".reprolint-cache"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based invariant linter for the AutoLearn reproduction",
    )
    add_lint_arguments(parser)
    return parser


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint CLI surface on ``parser`` (shared with autolearn)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: [tool.reprolint] include)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--pyproject",
        default=None,
        help="pyproject.toml to read [tool.reprolint] from "
        "(default: nearest pyproject.toml above the first path)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULE",
        help="run only these rules, by ID or name (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        "--disable",
        dest="ignore",
        action="append",
        default=[],
        metavar="RULE",
        help="disable a rule by ID or name (repeatable)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply available auto-fixes, then report what remains",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"baseline file to subtract from the report "
        f"(default: {BASELINE_FILENAME} next to pyproject.toml)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=f"incremental-cache directory "
        f"(default: {CACHE_DIRNAME} next to pyproject.toml)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache for this run",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule and exit",
    )


def _find_pyproject(start: Path) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for candidate in [node, *node.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def _list_rules() -> str:
    rows = [f"{'ID':6s} {'severity':8s} {'name':18s} description"]
    for rule in all_rules():
        rows.append(
            f"{rule.id:6s} {str(rule.severity):8s} {rule.name:18s} "
            f"{rule.description}"
        )
    return "\n".join(rows)


def _unknown_rules(specs: list[str]) -> list[str]:
    return [spec for spec in specs if find_rule(spec) is None]


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    try:
        return _run_lint(args)
    except ConfigurationError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2


def _run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(_list_rules())
        return 0
    for flag, specs in (("--select", args.select), ("--ignore", args.ignore)):
        unknown = _unknown_rules(specs)
        if unknown:
            print(
                f"reprolint: unknown rule(s) in {flag}: {', '.join(unknown)} "
                "(see --list-rules)",
                file=sys.stderr,
            )
            return 2

    if args.pyproject is not None:
        pyproject = Path(args.pyproject)
        config = LintConfig.from_pyproject(pyproject)
    else:
        anchor = Path(args.paths[0]) if args.paths else Path.cwd()
        pyproject = _find_pyproject(anchor)
        config = (
            LintConfig.from_pyproject(pyproject)
            if pyproject is not None
            else LintConfig()
        )
    if args.select:
        config = replace(config, select=config.select + tuple(args.select))
    if args.ignore:
        config = replace(config, disable=config.disable + tuple(args.ignore))
    paths = args.paths or list(config.include)

    if args.fix:
        # Fix runs bypass the cache: cached findings carry no fix spans,
        # and the tree is mutating under us anyway.
        report = fix_paths(paths, config)
        result = report.result
        print(report.render())
    else:
        cache_dir: Path | str | None = args.cache_dir
        if cache_dir is None and pyproject is not None:
            cache_dir = pyproject.parent / CACHE_DIRNAME
        if args.no_cache:
            cache_dir = None
        result = lint_paths(paths, config, cache_dir=cache_dir)

    baseline_path = (
        Path(args.baseline)
        if args.baseline is not None
        else (pyproject.parent if pyproject is not None else Path.cwd())
        / BASELINE_FILENAME
    )
    if args.update_baseline:
        count = write_baseline(baseline_path, result)
        print(f"reprolint: baseline at {baseline_path} now holds {count} finding(s)")
        return 0
    baseline = Baseline.load(baseline_path)
    if len(baseline):
        result, matched = apply_baseline(result, baseline)
    print(REPORTERS[args.format](result))
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.analysis``."""
    return run_lint_command(build_parser().parse_args(argv))
