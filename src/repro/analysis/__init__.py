"""``repro.analysis`` — the "reprolint" AST-based invariant linter.

The reproduction's correctness rests on contracts that used to live
only in docstrings: no component reads the real wall clock
(``common/clock.py``), all randomness flows through
``common/rng.py``, every subsystem raises ``ReproError`` subclasses
(``common/errors.py``), public APIs are declared in ``__all__``, and
the package graph stays a DAG with ``common`` at the bottom.  This
package turns those contracts into enforced lint rules:

======  ==================  =================================================
ID      name                invariant
======  ==================  =================================================
RL001   wall-clock          no real wall-clock reads outside ``benchmarks/``
RL101   rng-outside-common  no direct numpy/stdlib RNG outside ``common/rng``
RL102   seed-ignored        public ``seed``/``rng`` params must be used
RL103   shared-rng-stream   scheduler callbacks do not share one RNG stream
RL201   bare-except         no bare ``except:``
RL202   broad-except        ``except Exception`` must re-raise or be justified
RL203   non-repro-raise     raised project classes subclass ``ReproError``
RL301   all-undefined       ``__all__`` names exist
RL302   all-missing         public defs are listed in ``__all__``
RL303   missing-all         modules declare ``__all__``
RL401   mutable-default     no mutable default arguments
RL501   layering            package imports respect the layer DAG
RL601   unordered-iter      no set/listdir/glob order reaching ordered sinks
RL602   id-sort-key         no sorting keyed on ``id()``
RL603   sim-time-race       no module state written by concurrent callbacks
======  ==================  =================================================

The RL103/RL6xx rules are whole-program: every file is condensed into a
:class:`~repro.analysis.graph.ModuleShard` and folded into a
:class:`~repro.analysis.graph.ProjectGraph` (import graph, class
hierarchy, best-effort call graph) that passes query through
:class:`~repro.analysis.context.ProjectIndex`.

Suppress a finding inline with ``# reprolint: disable=RL202`` (IDs or
symbolic names, comma-separated) and configure per-rule behaviour under
``[tool.reprolint]`` in ``pyproject.toml``.  Run ``autolearn lint`` or
``python -m repro.analysis``; ``--fix`` applies mechanical repairs,
``--format sarif`` emits SARIF 2.1.0, and an incremental cache makes
warm runs near-free.
"""

from repro.analysis.base import LintPass, all_passes, all_rules, find_rule, register
from repro.analysis.baseline import Baseline, apply_baseline, write_baseline
from repro.analysis.cache import LintCache
from repro.analysis.cli import main
from repro.analysis.config import LintConfig, RuleConfig
from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.findings import Finding, Rule, Severity, TextEdit
from repro.analysis.fixes import FixReport, apply_fixes, fix_paths, fix_source
from repro.analysis.graph import ModuleShard, ProjectGraph, extract_shard
from repro.analysis.reporters import render_json, render_text
from repro.analysis.runner import LintResult, collect_files, lint_paths, lint_source
from repro.analysis.sarif import render_sarif, sarif_payload

__all__ = [
    "LintPass",
    "register",
    "all_passes",
    "all_rules",
    "find_rule",
    "LintConfig",
    "RuleConfig",
    "ModuleContext",
    "ProjectIndex",
    "ModuleShard",
    "ProjectGraph",
    "extract_shard",
    "Finding",
    "Rule",
    "Severity",
    "TextEdit",
    "LintResult",
    "lint_paths",
    "lint_source",
    "collect_files",
    "FixReport",
    "apply_fixes",
    "fix_source",
    "fix_paths",
    "Baseline",
    "apply_baseline",
    "write_baseline",
    "LintCache",
    "render_text",
    "render_json",
    "render_sarif",
    "sarif_payload",
    "main",
]
