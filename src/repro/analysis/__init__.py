"""``repro.analysis`` — the "reprolint" AST-based invariant linter.

The reproduction's correctness rests on contracts that used to live
only in docstrings: no component reads the real wall clock
(``common/clock.py``), all randomness flows through
``common/rng.py``, every subsystem raises ``ReproError`` subclasses
(``common/errors.py``), public APIs are declared in ``__all__``, and
the package graph stays a DAG with ``common`` at the bottom.  This
package turns those contracts into enforced lint rules:

======  ==================  =================================================
ID      name                invariant
======  ==================  =================================================
RL001   wall-clock          no real wall-clock reads outside ``benchmarks/``
RL101   rng-outside-common  no direct numpy/stdlib RNG outside ``common/rng``
RL102   seed-ignored        public ``seed``/``rng`` params must be used
RL201   bare-except         no bare ``except:``
RL202   broad-except        ``except Exception`` must re-raise or be justified
RL203   non-repro-raise     raised project classes subclass ``ReproError``
RL301   all-undefined       ``__all__`` names exist
RL302   all-missing         public defs are listed in ``__all__``
RL303   missing-all         modules declare ``__all__``
RL401   mutable-default     no mutable default arguments
RL501   layering            package imports respect the layer DAG
======  ==================  =================================================

Suppress a finding inline with ``# reprolint: disable=RL202`` (IDs or
symbolic names, comma-separated) and configure per-rule behaviour under
``[tool.reprolint]`` in ``pyproject.toml``.  Run ``autolearn lint`` or
``python -m repro.analysis``.
"""

from repro.analysis.base import LintPass, all_passes, all_rules, find_rule, register
from repro.analysis.cli import main
from repro.analysis.config import LintConfig, RuleConfig
from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.findings import Finding, Rule, Severity
from repro.analysis.reporters import render_json, render_text
from repro.analysis.runner import LintResult, collect_files, lint_paths, lint_source

__all__ = [
    "LintPass",
    "register",
    "all_passes",
    "all_rules",
    "find_rule",
    "LintConfig",
    "RuleConfig",
    "ModuleContext",
    "ProjectIndex",
    "Finding",
    "Rule",
    "Severity",
    "LintResult",
    "lint_paths",
    "lint_source",
    "collect_files",
    "render_text",
    "render_json",
    "main",
]
