"""The auto-fix engine behind ``autolearn lint --fix``.

Passes attach :class:`~repro.analysis.findings.TextEdit` spans to the
findings they emit (mutable default -> ``None`` + guard, unordered
iteration -> ``sorted(...)`` wrap, ``__all__`` repair).  This module
turns those spans into rewritten files:

* edits are grouped per finding and applied **atomically** — if any
  edit in a group overlaps an already-accepted span, the whole group is
  deferred to the next round, so a finding is never half-fixed;
* accepted edits are applied in reverse source order so earlier spans
  stay valid;
* :func:`fix_source`/:func:`fix_paths` loop fix -> relint until no
  fixable finding remains (bounded rounds), which gives the engine its
  **idempotence guarantee**: fixing an already-fixed tree is a no-op,
  and a fixed file re-lints clean for every fixable rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding, TextEdit
from repro.analysis.runner import LintResult, lint_paths, lint_source

__all__ = [
    "FIXABLE_RULES",
    "MAX_FIX_ROUNDS",
    "FixReport",
    "apply_edits",
    "apply_fixes",
    "fix_source",
    "fix_paths",
]

# Rules whose passes attach fixes.  Kept here as the single source of
# truth for reporting and the rule-reference docs.
FIXABLE_RULES = frozenset({"RL301", "RL302", "RL303", "RL401", "RL601"})

MAX_FIX_ROUNDS = 5


def _line_starts(source: str) -> list[int]:
    """Byte offset of the start of each (1-based) line."""
    starts = [0]
    for i, ch in enumerate(source):
        if ch == "\n":
            starts.append(i + 1)
    return starts


def _to_offset(starts: list[int], source: str, line: int, col: int) -> int:
    """Offset of (1-based line, 0-based col), clamped to the source."""
    if line - 1 >= len(starts):
        return len(source)
    return min(starts[line - 1] + col, len(source))


def apply_edits(source: str, edits: list[TextEdit]) -> str:
    """Apply non-overlapping ``edits`` to ``source`` (caller pre-filters)."""
    starts = _line_starts(source)
    resolved = [
        (
            _to_offset(starts, source, e.start_line, e.start_col),
            _to_offset(starts, source, e.end_line, e.end_col),
            e.replacement,
        )
        for e in edits
    ]
    for start, end, replacement in sorted(resolved, reverse=True):
        source = source[:start] + replacement + source[end:]
    return source


def apply_fixes(source: str, findings: list[Finding]) -> tuple[str, int]:
    """Apply every finding's fix group atomically; return (source, applied).

    Groups are deduplicated (several ``__all__`` findings share one
    repair edit) and a group any of whose spans overlaps an accepted
    span is skipped — the fixpoint loop picks it up next round against
    fresh coordinates.
    """
    starts = _line_starts(source)

    def resolve(edit: TextEdit) -> tuple[int, int, str]:
        return (
            _to_offset(starts, source, edit.start_line, edit.start_col),
            _to_offset(starts, source, edit.end_line, edit.end_col),
            edit.replacement,
        )

    groups: dict[tuple, tuple[TextEdit, ...]] = {}
    for finding in findings:
        if finding.fixes:
            key = tuple((e.span_key, e.replacement) for e in finding.fixes)
            groups[key] = finding.fixes

    accepted: list[tuple[int, int, str]] = []
    applied = 0
    for key in sorted(groups):
        resolved = [resolve(edit) for edit in groups[key]]
        conflict = any(
            start < a_end and a_start < end
            for start, end, _ in resolved
            for a_start, a_end, _ in accepted
        )
        if conflict:
            continue
        accepted.extend(resolved)
        applied += 1
    if not accepted:
        return source, 0
    for start, end, replacement in sorted(accepted, reverse=True):
        source = source[:start] + replacement + source[end:]
    return source, applied


def fix_source(
    source: str,
    filename: str = "snippet.py",
    config: LintConfig | None = None,
    extra_sources: dict[str, str] | None = None,
) -> tuple[str, int]:
    """Fix an in-memory module to a fixpoint; return (source, fixes applied)."""
    total = 0
    for _ in range(MAX_FIX_ROUNDS):
        findings = lint_source(
            source, filename=filename, config=config, extra_sources=extra_sources
        )
        source_after, applied = apply_fixes(source, findings)
        total += applied
        if applied == 0 or source_after == source:
            break
        source = source_after
    return source, total


@dataclass
class FixReport:
    """Outcome of a ``--fix`` run over real files."""

    files_changed: int = 0
    fixes_applied: int = 0
    rounds: int = 0
    result: LintResult = field(default_factory=LintResult)

    def render(self) -> str:
        return (
            f"reprolint --fix: applied {self.fixes_applied} fix(es) "
            f"in {self.files_changed} file(s) over {self.rounds} round(s)"
        )


def fix_paths(
    paths: list[Path | str], config: LintConfig | None = None
) -> FixReport:
    """Rewrite files until no fixable finding remains; relint at the end."""
    config = config or LintConfig()
    report = FixReport()
    changed: set[str] = set()
    for _ in range(MAX_FIX_ROUNDS):
        result = lint_paths(paths, config)
        by_path: dict[str, list[Finding]] = {}
        for finding in result.findings:
            if finding.fixes:
                by_path.setdefault(finding.path, []).append(finding)
        if not by_path:
            report.result = result
            report.files_changed = len(changed)
            return report
        report.rounds += 1
        for path, findings in sorted(by_path.items()):
            target = Path(path)
            fixed, applied = apply_fixes(target.read_text(encoding="utf-8"), findings)
            if applied:
                target.write_text(fixed, encoding="utf-8")
                changed.add(path)
                report.fixes_applied += applied
    report.result = lint_paths(paths, config)
    report.files_changed = len(changed)
    return report
