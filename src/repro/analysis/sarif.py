"""SARIF 2.1.0 reporter — CI-grade machine-readable lint output.

SARIF (Static Analysis Results Interchange Format) is the schema code
hosts ingest for inline annotations.  The document here sticks to the
stable core of the 2.1.0 shape: one run, a ``tool.driver`` carrying the
full rule catalog, and one ``result`` per finding with a physical
location.  Output is deterministic — findings are already sorted, keys
are sorted, and no timestamps or absolute URIs are embedded — so the
report is byte-identical for a given tree state.
"""

from __future__ import annotations

import json

from repro.analysis.base import all_rules
from repro.analysis.findings import Finding, Severity
from repro.analysis.runner import LintResult

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "TOOL_NAME", "sarif_payload", "render_sarif"]

SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"
TOOL_NAME = "reprolint"


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _result(finding: Finding, rule_index: dict[str, int]) -> dict:
    entry: dict = {
        "ruleId": finding.rule_id,
        "level": _level(finding.severity),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        # SARIF columns are 1-based; findings carry
                        # 0-based AST column offsets.
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if finding.rule_id in rule_index:
        entry["ruleIndex"] = rule_index[finding.rule_id]
    return entry


def sarif_payload(result: LintResult) -> dict:
    """The SARIF document as a plain dict (for tests and embedding)."""
    rules = [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {"level": _level(rule.severity)},
        }
        for rule in all_rules()
    ]
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": (
                            "https://example.invalid/autolearn/reprolint"
                        ),
                        "rules": rules,
                    }
                },
                "results": [
                    _result(finding, rule_index) for finding in result.findings
                ],
            }
        ],
    }


def render_sarif(result: LintResult) -> str:
    """Serialise the SARIF document (sorted keys, stable bytes)."""
    return json.dumps(sarif_payload(result), indent=2, sort_keys=True)
