"""Text, JSON, and SARIF reporters for lint results."""

from __future__ import annotations

import json

from repro.analysis.runner import LintResult
from repro.analysis.sarif import render_sarif

__all__ = ["render_text", "render_json", "REPORTERS"]


def render_text(result: LintResult) -> str:
    """Human-readable report: one row per finding plus a summary line."""
    lines = [finding.render() for finding in result.findings]
    if result.ok:
        lines.append(f"reprolint: {result.files_checked} file(s) clean")
    else:
        lines.append(
            f"reprolint: {result.error_count} error(s), "
            f"{result.warning_count} warning(s) "
            f"in {result.files_checked} file(s)"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order, sorted findings)."""
    payload = {
        "files_checked": result.files_checked,
        "errors": result.error_count,
        "warnings": result.warning_count,
        "findings": [finding.to_dict() for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


REPORTERS = {"text": render_text, "json": render_json, "sarif": render_sarif}
