"""Finding and rule data types for the ``reprolint`` framework.

A :class:`Rule` describes one invariant the linter enforces (stable ID,
symbolic name, severity, prose).  A :class:`Finding` is one concrete
violation at a file/line/column.  Findings sort naturally by location so
reports are stable across runs and platforms.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Severity", "Rule", "TextEdit", "Finding"]


class Severity(enum.Enum):
    """How serious a finding is.  Any finding fails the lint run."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Rule:
    """One enforced invariant, with a stable machine-readable identity.

    ``id`` is the stable code (``RL001``); ``name`` is the symbolic
    spelling accepted in pragmas and configuration (``wall-clock``).
    ``default_exclude`` holds path globs where the rule never applies
    (e.g. the wall-clock ban is lifted under ``benchmarks/``).
    """

    id: str
    name: str
    description: str
    severity: Severity = Severity.ERROR
    default_exclude: tuple[str, ...] = ()

    def matches(self, spec: str) -> bool:
        """True if ``spec`` (a pragma/config token) selects this rule."""
        return spec in (self.id, self.name, "all")


@dataclass(frozen=True)
class TextEdit:
    """One span-based replacement a fixer wants to make.

    Spans are (1-based line, 0-based column) half-open ranges over the
    original source; an insertion has ``start == end``.  Edits are
    applied by :mod:`repro.analysis.fixes` in reverse source order so
    earlier spans stay valid.
    """

    start_line: int
    start_col: int
    end_line: int
    end_col: int
    replacement: str

    @property
    def span_key(self) -> tuple[int, int, int, int]:
        return (self.start_line, self.start_col, self.end_line, self.end_col)

    def to_dict(self) -> dict[str, object]:
        return {
            "start_line": self.start_line,
            "start_col": self.start_col,
            "end_line": self.end_line,
            "end_col": self.end_col,
            "replacement": self.replacement,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TextEdit":
        return cls(**data)


@dataclass(frozen=True, order=True)
class Finding:
    """One violation: where it is, which rule, and what went wrong."""

    path: str
    line: int
    col: int
    rule_id: str
    rule_name: str = field(compare=False)
    severity: Severity = field(compare=False)
    message: str = field(compare=False)
    fixes: tuple[TextEdit, ...] = field(compare=False, default=(), repr=False)

    @property
    def fixable(self) -> bool:
        return bool(self.fixes)

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation (used by the JSON reporter)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "name": self.rule_name,
            "severity": str(self.severity),
            "message": self.message,
            "fixable": self.fixable,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output (cache rehydration)."""
        return cls(
            path=data["path"],
            line=data["line"],
            col=data["col"],
            rule_id=data["rule"],
            rule_name=data["name"],
            severity=Severity(data["severity"]),
            message=data["message"],
        )

    def render(self) -> str:
        """``path:line:col: RLxxx [name] message`` (the text reporter row)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.rule_name}] {self.message}"
        )
