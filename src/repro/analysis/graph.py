"""Project-wide import graph, class hierarchy, and best-effort call graph.

Single-file AST rules cannot see an unseeded RNG threaded through three
modules or two scheduler callbacks mutating the same dict at the same
simulated timestamp.  This module gives every pass whole-program
structure without evaluating any code:

* each linted file is condensed into a :class:`ModuleShard` — a plain
  JSON-serialisable summary of its classes, imports, functions, call
  references, scheduler callbacks, and module-level mutable state;
* :class:`ProjectGraph` folds shards into a class hierarchy
  (:class:`ClassHierarchy`), an import graph, and a name-resolution
  call graph, then answers flow queries: which functions are reachable
  from which :class:`~repro.common.clock.EventScheduler` callbacks, which
  module globals are written from more than one callback (the
  simulated-time race), and which module-level RNG streams are shared
  across callbacks (stream sharing).

Shards — not ASTs — are the unit of caching: the incremental cache in
:mod:`repro.analysis.cache` persists them per file so a warm lint run
can rebuild the whole-program graph without re-parsing unchanged files.

Resolution is deliberately best-effort: bare names resolve through the
module's imports and top-level definitions, ``self.method`` resolves
through the class hierarchy, and anything dynamic (``getattr``, dict
dispatch, decorators swapping callables) is silently skipped.  A lint
pass must never guess wrong loudly.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import asdict, dataclass, field

__all__ = [
    "CALLBACK_SCHEDULERS",
    "MUTATOR_METHODS",
    "RNG_CONSTRUCTORS",
    "CallRef",
    "FunctionInfo",
    "GlobalSlot",
    "ModuleShard",
    "extract_shard",
    "ClassHierarchy",
    "FlowFinding",
    "ProjectGraph",
]

# Attribute names whose second positional argument is an event callback.
CALLBACK_SCHEDULERS = frozenset({"schedule_at", "schedule_in"})

# Method calls that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "appendleft",
        "extendleft", "sort", "reverse",
    }
)

# Callables whose result is an RNG stream (bare-name spellings; the
# dotted numpy spellings are already banned by RL101 outside common/rng).
RNG_CONSTRUCTORS = frozenset({"ensure_rng", "default_rng", "Random", "spawn"})

_MUTABLE_CTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "OrderedDict", "Counter"}
)


@dataclass(frozen=True)
class CallRef:
    """One unresolved reference out of a function body.

    ``kind`` is ``"name"`` (bare ``f``), ``"self"`` (``self.m`` /
    ``cls.m``), ``"dotted"`` (``alias.attr``), or ``"local"`` (an
    already-qualified target such as a lambda pseudo-function).
    """

    kind: str
    target: str

    def to_json(self) -> list[str]:
        return [self.kind, self.target]

    @classmethod
    def from_json(cls, data: list[str]) -> "CallRef":
        return cls(kind=data[0], target=data[1])


@dataclass
class FunctionInfo:
    """Flow summary of one function (or lambda / module body)."""

    line: int = 0
    calls: list[CallRef] = field(default_factory=list)
    callbacks: list[CallRef] = field(default_factory=list)
    global_writes: list[tuple[str, int, int]] = field(default_factory=list)
    global_reads: list[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "line": self.line,
            "calls": [ref.to_json() for ref in self.calls],
            "callbacks": [ref.to_json() for ref in self.callbacks],
            "global_writes": [list(w) for w in self.global_writes],
            "global_reads": sorted(self.global_reads),
        }

    @classmethod
    def from_json(cls, data: dict) -> "FunctionInfo":
        return cls(
            line=data["line"],
            calls=[CallRef.from_json(ref) for ref in data["calls"]],
            callbacks=[CallRef.from_json(ref) for ref in data["callbacks"]],
            global_writes=[tuple(w) for w in data["global_writes"]],
            global_reads=list(data["global_reads"]),
        )


@dataclass(frozen=True)
class GlobalSlot:
    """A module-level binding of interest (mutable container or RNG)."""

    name: str
    line: int
    col: int
    kind: str  # "list" / "dict" / "set" / ... or the RNG constructor name


@dataclass
class ModuleShard:
    """JSON-serialisable whole-program summary of one parsed module."""

    path: str
    module: str
    classes: dict[str, dict] = field(default_factory=dict)
    top_functions: list[str] = field(default_factory=list)
    imports: list[str] = field(default_factory=list)
    bindings: dict[str, str] = field(default_factory=dict)
    defs: dict[str, FunctionInfo] = field(default_factory=dict)
    mutables: list[GlobalSlot] = field(default_factory=list)
    rng_slots: list[GlobalSlot] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "module": self.module,
            "classes": {
                name: {"bases": info["bases"], "methods": info["methods"]}
                for name, info in sorted(self.classes.items())
            },
            "top_functions": sorted(self.top_functions),
            "imports": sorted(self.imports),
            "bindings": dict(sorted(self.bindings.items())),
            "defs": {
                qual: info.to_json() for qual, info in sorted(self.defs.items())
            },
            "mutables": [sorted(asdict(slot).items()) for slot in self.mutables],
            "rng_slots": [sorted(asdict(slot).items()) for slot in self.rng_slots],
        }

    @classmethod
    def from_json(cls, data: dict) -> "ModuleShard":
        return cls(
            path=data["path"],
            module=data["module"],
            classes={
                name: {"bases": list(info["bases"]), "methods": list(info["methods"])}
                for name, info in data["classes"].items()
            },
            top_functions=list(data["top_functions"]),
            imports=list(data["imports"]),
            bindings=dict(data["bindings"]),
            defs={
                qual: FunctionInfo.from_json(info)
                for qual, info in data["defs"].items()
            },
            mutables=[GlobalSlot(**dict(pairs)) for pairs in data["mutables"]],
            rng_slots=[GlobalSlot(**dict(pairs)) for pairs in data["rng_slots"]],
        )


# --------------------------------------------------------------- extraction


def _base_name(node: ast.expr) -> str | None:
    """Bare class name of a base expression (``errors.TubError`` -> ``TubError``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):  # Generic[...] bases
        return _base_name(node.value)
    return None


def _mutable_kind(node: ast.expr) -> str | None:
    """Container kind of a module-level RHS, or None if not mutable."""
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in _MUTABLE_CTORS:
            return node.func.id
    return None


def _rng_ctor(node: ast.expr) -> str | None:
    """RNG-constructor name if the RHS builds a random stream."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    return name if name in RNG_CONSTRUCTORS else None


class _FunctionExtractor(ast.NodeVisitor):
    """Summarise one function body into a :class:`FunctionInfo`.

    Nested ``def``s are folded into the enclosing function (their calls
    and writes happen, at the latest, when the closure runs); lambdas
    passed as scheduler callbacks become pseudo-functions so the race
    detector can treat each one as its own callback root.
    """

    def __init__(self, shard: ModuleShard, qual: str, info: FunctionInfo) -> None:
        self.shard = shard
        self.qual = qual
        self.info = info
        self._globals: set[str] = set()

    def visit_Global(self, node: ast.Global) -> None:
        self._globals.update(node.names)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        for stmt in node.body:  # fold nested defs into the parent
            self.visit(stmt)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.visit(node.body)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_store(target)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_store(node.target)
        if isinstance(node.target, ast.Name):
            self.info.global_reads.append(node.target.id)
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_store(target)

    def _record_store(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name) and target.id in self._globals:
            self.info.global_writes.append(
                (target.id, target.lineno, target.col_offset)
            )
        elif isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
            self.info.global_writes.append(
                (target.value.id, target.lineno, target.col_offset)
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_store(elt)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.info.global_reads.append(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # "self.handler" referenced without a call still links the
        # method into the flow graph (handlers get stored and invoked).
        if (
            isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")
        ):
            self.info.calls.append(CallRef("self", node.attr))
            return
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self.info.calls.append(CallRef("name", func.id))
            self.info.global_reads.append(func.id)
        elif isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                if func.value.id in ("self", "cls"):
                    self.info.calls.append(CallRef("self", func.attr))
                else:
                    self.info.calls.append(
                        CallRef("dotted", f"{func.value.id}.{func.attr}")
                    )
                    if func.attr in MUTATOR_METHODS:
                        self.info.global_writes.append(
                            (func.value.id, func.lineno, func.col_offset)
                        )
                    self.info.global_reads.append(func.value.id)
            if func.attr in CALLBACK_SCHEDULERS and len(node.args) >= 2:
                self._record_callback(node.args[1])
            if not isinstance(func.value, ast.Name):
                self.visit(func.value)
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)

    def _record_callback(self, arg: ast.expr) -> None:
        if isinstance(arg, ast.Lambda):
            pseudo = f"{self.qual}.<lambda:{arg.lineno}>" if self.qual else (
                f"<lambda:{arg.lineno}>"
            )
            info = FunctionInfo(line=arg.lineno)
            _FunctionExtractor(self.shard, pseudo, info).visit(arg.body)
            self.shard.defs[pseudo] = info
            self.info.callbacks.append(CallRef("local", pseudo))
        elif isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name) and (
            arg.value.id in ("self", "cls")
        ):
            self.info.callbacks.append(CallRef("self", arg.attr))
        elif isinstance(arg, ast.Name):
            self.info.callbacks.append(CallRef("name", arg.id))


def extract_shard(path: str, module: str, tree: ast.Module) -> ModuleShard:
    """Condense one parsed module into its :class:`ModuleShard`."""
    shard = ModuleShard(path=path, module=module)
    module_info = FunctionInfo(line=1)

    def _extract_function(
        qual: str, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        info = FunctionInfo(line=node.lineno)
        extractor = _FunctionExtractor(shard, qual, info)
        for stmt in node.body:
            extractor.visit(stmt)
        shard.defs[qual] = info

    for stmt in ast.walk(tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                shard.imports.append(alias.name)
                shard.bindings[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(stmt, ast.ImportFrom) and stmt.level == 0 and stmt.module:
            shard.imports.append(stmt.module)
            for alias in stmt.names:
                if alias.name != "*":
                    shard.bindings[alias.asname or alias.name] = (
                        f"{stmt.module}.{alias.name}"
                    )

    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            methods: list[str] = []
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.append(sub.name)
                    _extract_function(f"{stmt.name}.{sub.name}", sub)
            bases = sorted(
                {name for base in stmt.bases if (name := _base_name(base))}
            )
            shard.classes[stmt.name] = {"bases": bases, "methods": sorted(methods)}
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            shard.top_functions.append(stmt.name)
            _extract_function(stmt.name, stmt)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if not isinstance(target, ast.Name) or target.id == "__all__":
                    continue
                kind = _mutable_kind(stmt.value)
                if kind is not None:
                    shard.mutables.append(
                        GlobalSlot(target.id, stmt.lineno, stmt.col_offset, kind)
                    )
                ctor = _rng_ctor(stmt.value)
                if ctor is not None:
                    shard.rng_slots.append(
                        GlobalSlot(target.id, stmt.lineno, stmt.col_offset, ctor)
                    )
            _FunctionExtractor(shard, "", module_info).visit(stmt)
        else:
            _FunctionExtractor(shard, "", module_info).visit(stmt)
    shard.defs[""] = module_info
    return shard


# ------------------------------------------------------------- hierarchy


class ClassHierarchy:
    """Bare-name class hierarchy across every linted file.

    ``classes`` maps a bare class name to the set of bare base-class
    names seen anywhere in the project (a class defined twice merges its
    bases — acceptable for a lint pass; the repo keeps class names
    unique).  This is the single home of the resolution logic RL203 and
    the call graph share.
    """

    def __init__(self) -> None:
        self.classes: dict[str, set[str]] = {}
        self._repro_cache: dict[str, bool] = {}

    def add(self, name: str, bases: set[str] | list[str]) -> None:
        self.classes.setdefault(name, set()).update(bases)
        self._repro_cache.clear()

    def is_defined(self, name: str) -> bool:
        """True if a class of this name is defined somewhere in the project."""
        return name in self.classes

    def is_repro_error(self, name: str, _seen: frozenset[str] = frozenset()) -> bool:
        """True if ``name`` transitively subclasses ``ReproError``."""
        if name == "ReproError":
            return True
        if name in self._repro_cache:
            return self._repro_cache[name]
        if name in _seen or name not in self.classes:
            return False
        result = any(
            self.is_repro_error(base, _seen | {name})
            for base in self.classes[name]
        )
        self._repro_cache[name] = result
        return result

    def mro_names(self, name: str) -> list[str]:
        """Best-effort linearisation: ``name`` then ancestors, BFS order."""
        order: list[str] = []
        queue = [name]
        seen: set[str] = set()
        while queue:
            cls = queue.pop(0)
            if cls in seen:
                continue
            seen.add(cls)
            order.append(cls)
            queue.extend(sorted(self.classes.get(cls, ())))
        return order

    @staticmethod
    def is_builtin_exception(name: str) -> bool:
        """True if ``name`` is a builtin exception class (always allowed)."""
        obj = getattr(builtins, name, None)
        return isinstance(obj, type) and issubclass(obj, BaseException)


# ------------------------------------------------------------ the graph


@dataclass(frozen=True)
class FlowFinding:
    """One whole-program hazard, attributed to a concrete file/line."""

    path: str
    line: int
    col: int
    kind: str  # "race" or "shared-rng"
    subject: str  # the global variable / stream name
    roots: tuple[str, ...]  # the callback roots that conflict


class ProjectGraph:
    """Import graph + class hierarchy + call graph over module shards."""

    def __init__(self) -> None:
        self.shards: dict[str, ModuleShard] = {}  # module -> shard
        self.hierarchy = ClassHierarchy()
        self._class_home: dict[str, str] = {}  # bare class name -> module
        self._edges: dict[str, set[str]] | None = None
        self._roots: list[str] | None = None
        self._reach: dict[str, frozenset[str]] = {}
        self._flow: list[FlowFinding] | None = None

    # -- construction

    def add_shard(self, shard: ModuleShard) -> None:
        self.shards[shard.module or shard.path] = shard
        for name, info in shard.classes.items():
            self.hierarchy.add(name, info["bases"])
            self._class_home.setdefault(name, shard.module)
        self._edges = None
        self._roots = None
        self._reach.clear()
        self._flow = None

    # -- import graph

    def imports_of(self, module: str) -> frozenset[str]:
        """Modules imported by ``module`` (as written, unresolved)."""
        shard = self.shards.get(module)
        return frozenset(shard.imports) if shard else frozenset()

    def import_edges(self) -> dict[str, frozenset[str]]:
        """module -> imported modules, restricted to modules in the project."""
        known = set(self.shards)
        out: dict[str, frozenset[str]] = {}
        for module, shard in self.shards.items():
            targets = set()
            for imp in shard.imports:
                for candidate in (imp, imp.rsplit(".", 1)[0]):
                    if candidate in known and candidate != module:
                        targets.add(candidate)
            out[module] = frozenset(targets)
        return out

    # -- call graph

    def _method_home(self, cls: str, method: str) -> str | None:
        """Qualified name of ``method`` resolved up the hierarchy from ``cls``."""
        for ancestor in self.hierarchy.mro_names(cls):
            home = self._class_home.get(ancestor)
            if home is None:
                continue
            shard = self.shards.get(home)
            if shard and method in shard.classes.get(ancestor, {}).get("methods", ()):
                return f"{home}.{ancestor}.{method}"
        return None

    def _resolve(self, module: str, qual: str, ref: CallRef) -> str | None:
        """Project-qualified target of one :class:`CallRef`, or ``None``."""
        shard = self.shards.get(module)
        if shard is None:
            return None
        if ref.kind == "local":
            return f"{module}.{ref.target}" if module else ref.target
        if ref.kind == "self":
            cls = qual.split(".")[0] if "." in qual else None
            if cls and cls in shard.classes:
                return self._method_home(cls, ref.target)
            return None
        if ref.kind == "name":
            name = ref.target
            if name in shard.top_functions:
                return f"{module}.{name}"
            if name in shard.classes:
                return self._method_home(name, "__init__")
            bound = shard.bindings.get(name)
            if bound is not None:
                return self._resolve_dotted(bound)
            return None
        if ref.kind == "dotted":
            head, _, attr = ref.target.partition(".")
            bound = shard.bindings.get(head)
            if bound is not None:
                return self._resolve_dotted(f"{bound}.{attr}")
        return None

    def _resolve_dotted(self, dotted: str) -> str | None:
        """Resolve ``package.module.attr`` against project shards."""
        module, _, attr = dotted.rpartition(".")
        shard = self.shards.get(module)
        if shard is None or not attr:
            return None
        if attr in shard.top_functions:
            return f"{module}.{attr}"
        if attr in shard.classes:
            return self._method_home(attr, "__init__")
        return None

    def edges(self) -> dict[str, set[str]]:
        """Resolved call-graph edges: qualified caller -> qualified callees."""
        if self._edges is None:
            self._edges = {}
            for module, shard in self.shards.items():
                for qual, info in shard.defs.items():
                    caller = f"{module}.{qual}" if qual else module
                    targets = self._edges.setdefault(caller, set())
                    for ref in info.calls:
                        resolved = self._resolve(module, qual, ref)
                        if resolved is not None:
                            targets.add(resolved)
        return self._edges

    def callback_roots(self) -> list[str]:
        """Qualified functions scheduled as EventScheduler callbacks."""
        if self._roots is None:
            roots: set[str] = set()
            for module, shard in self.shards.items():
                for qual, info in shard.defs.items():
                    for ref in info.callbacks:
                        resolved = self._resolve(module, qual, ref)
                        if resolved is not None:
                            roots.add(resolved)
            self._roots = sorted(roots)
        return self._roots

    def reachable(self, root: str) -> frozenset[str]:
        """Every qualified function reachable from ``root`` (inclusive)."""
        cached = self._reach.get(root)
        if cached is not None:
            return cached
        edges = self.edges()
        seen: set[str] = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(edges.get(node, ()))
        result = frozenset(seen)
        self._reach[root] = result
        return result

    # -- flow analyses

    def _function_info(self, qualified: str) -> tuple[str, FunctionInfo] | None:
        """(module, info) for a qualified function name, or None."""
        for module, shard in self.shards.items():
            if qualified == module:
                return module, shard.defs.get("", FunctionInfo())
            if qualified.startswith(module + "."):
                local = qualified[len(module) + 1:]
                info = shard.defs.get(local)
                if info is not None:
                    return module, info
        return None

    def flow_findings(self) -> list[FlowFinding]:
        """All determinism-race and shared-RNG hazards in the project."""
        if self._flow is not None:
            return self._flow
        roots = self.callback_roots()
        reach = {root: self.reachable(root) for root in roots}

        findings: list[FlowFinding] = []
        for module, shard in self.shards.items():
            mutable_names = {slot.name for slot in shard.mutables}
            rng_slots = {slot.name: slot for slot in shard.rng_slots}
            if not mutable_names and not rng_slots:
                continue
            # Which roots reach each function of this module?
            writers: dict[str, list[tuple[str, int, int, set[str]]]] = {}
            rng_readers: dict[str, set[str]] = {}
            for qual, info in shard.defs.items():
                qualified = f"{module}.{qual}" if qual else module
                reaching = {root for root in roots if qualified in reach[root]}
                for var, line, col in info.global_writes:
                    if var in mutable_names:
                        writers.setdefault(var, []).append(
                            (qualified, line, col, reaching)
                        )
                if not reaching:
                    continue
                for name in info.global_reads:
                    if name in rng_slots:
                        rng_readers.setdefault(name, set()).update(reaching)
            for var, sites in sorted(writers.items()):
                all_roots = sorted(set().union(*(r for _, _, _, r in sites)))
                if len(all_roots) < 2:
                    continue
                for qualified, line, col, reaching in sites:
                    if not reaching:
                        continue
                    findings.append(
                        FlowFinding(
                            path=shard.path,
                            line=line,
                            col=col,
                            kind="race",
                            subject=var,
                            roots=tuple(all_roots),
                        )
                    )
            for name, reaching in sorted(rng_readers.items()):
                if len(reaching) < 2:
                    continue
                slot = rng_slots[name]
                findings.append(
                    FlowFinding(
                        path=shard.path,
                        line=slot.line,
                        col=slot.col,
                        kind="shared-rng",
                        subject=name,
                        roots=tuple(sorted(reaching)),
                    )
                )
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.kind, f.subject))
        self._flow = findings
        return findings

    def flow_findings_for(self, path: str) -> list[FlowFinding]:
        """Hazards attributed to the file at ``path``."""
        return [f for f in self.flow_findings() if f.path == path]
