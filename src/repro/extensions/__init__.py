"""Extension assignments: GPS paths, classical vision, RL (paper §3.3)."""

from repro.extensions.gps import GPSReceiver, GPSTrace, PathFollower, record_gps_path
from repro.extensions.uav import (
    CropField,
    Quadrotor,
    SurveyReport,
    UAVParams,
    UAVState,
    fly_survey,
    lawnmower_waypoints,
)
from repro.extensions.rl import CEMConfig, LinearPolicy, RLPilot, train_cem
from repro.extensions.vision import (
    LineFollowPilot,
    StopGoPilot,
    classify_signal_color,
    detect_obstacle,
    line_offset,
    paint_signal_object,
)

__all__ = [
    "Quadrotor",
    "UAVParams",
    "UAVState",
    "CropField",
    "SurveyReport",
    "fly_survey",
    "lawnmower_waypoints",
    "GPSReceiver",
    "GPSTrace",
    "PathFollower",
    "record_gps_path",
    "LinearPolicy",
    "CEMConfig",
    "train_cem",
    "RLPilot",
    "classify_signal_color",
    "paint_signal_object",
    "StopGoPilot",
    "line_offset",
    "LineFollowPilot",
    "detect_obstacle",
]
