"""Classical computer-vision extensions (paper §3.3, E10).

Three of the proposed exercises:

* **color stop/go** — "camera identifies color of object placed in
  front of it; red means stop, green means go";
* **edge detection / line following** — "camera used to identify the
  edge of the track or a center line and keep the car following that";
* **obstacle detection** — flag an unexpected object in the lane.

All three are implemented with vectorised numpy (no learned weights):
classical vision is the point of the assignment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng

__all__ = [
    "classify_signal_color",
    "paint_signal_object",
    "StopGoPilot",
    "line_offset",
    "LineFollowPilot",
    "detect_obstacle",
]


# ------------------------------------------------------ color stop/go


def paint_signal_object(
    image: np.ndarray,
    color: str,
    size: int = 24,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Place a coloured object in front of the camera (test harness).

    Draws a filled disc of the signal colour in the lower-centre of the
    frame, with slight position jitter — the physical exercise's
    'object placed in front of the camera'.
    """
    palette = {"red": (205, 38, 36), "green": (44, 170, 66)}
    if color not in palette:
        raise ConfigurationError(f"color must be 'red' or 'green', got {color!r}")
    gen = ensure_rng(rng)
    out = image.copy()
    h, w = out.shape[:2]
    cy = int(h * 0.70 + gen.integers(-4, 5))
    cx = int(w * 0.50 + gen.integers(-8, 9))
    yy, xx = np.mgrid[0:h, 0:w]
    mask = (yy - cy) ** 2 + (xx - cx) ** 2 <= size**2
    out[mask] = palette[color]
    return out


def classify_signal_color(
    image: np.ndarray, min_fraction: float = 0.004
) -> str:
    """Classify the dominant signal colour: 'red', 'green', or 'none'.

    Uses excess-channel masks (R much greater than G and B, or vice
    versa) over the lower half of the frame where the object sits.
    """
    if image.ndim != 3 or image.shape[2] != 3:
        raise ConfigurationError(f"expected HxWx3 image, got {image.shape}")
    lower = image[image.shape[0] // 2 :].astype(np.int32)
    r, g, b = lower[..., 0], lower[..., 1], lower[..., 2]
    # True red has G ~ B; the orange track tape (G >> B) must not trip it.
    red_mask = (r > g + 45) & (r > b + 45) & (np.abs(g - b) < 40)
    green_mask = (g > r + 35) & (g > b + 35)
    total = lower.shape[0] * lower.shape[1]
    red_frac = red_mask.sum() / total
    green_frac = green_mask.sum() / total
    if max(red_frac, green_frac) < min_fraction:
        return "none"
    return "red" if red_frac >= green_frac else "green"


class StopGoPilot:
    """Wraps a pilot: red object -> brake; green/none -> pass through."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.stopped_ticks = 0

    def run(self, image: np.ndarray | None) -> tuple[float, float]:
        """Drive-loop part interface."""
        if image is None:
            return 0.0, 0.0
        angle, throttle = self.inner.run(image)
        if classify_signal_color(image) == "red":
            self.stopped_ticks += 1
            return angle, -0.3  # brake
        return angle, throttle

    def shutdown(self) -> None:
        hook = getattr(self.inner, "shutdown", None)
        if callable(hook):
            hook()


# -------------------------------------------------- line following


def line_offset(image: np.ndarray, tape_rgb=(232, 119, 34)) -> float | None:
    """Horizontal offset of the near tape line, in [-1, 1].

    Finds tape-coloured pixels in the lower third of the frame and
    returns the mean column offset from centre (None if no tape seen).
    """
    if image.ndim != 3 or image.shape[2] != 3:
        raise ConfigurationError(f"expected HxWx3 image, got {image.shape}")
    strip = image[image.shape[0] // 3 :].astype(np.int32)
    target = np.asarray(tape_rgb, dtype=np.int32)
    dist = np.abs(strip - target).sum(axis=2)
    mask = dist < 120
    if mask.sum() < 8:
        return None
    cols = np.nonzero(mask)[1]
    w = strip.shape[1]
    return float((cols.mean() - w / 2.0) / (w / 2.0))


class LineFollowPilot:
    """Steer to keep the detected line at a fixed image offset.

    The outer boundary line sits to one side of the camera when the
    car is centred; the controller regulates the line's horizontal
    position toward ``target_offset``.
    """

    def __init__(
        self,
        target_offset: float = 0.0,
        gain: float = 1.6,
        throttle: float = 0.38,
        tape_rgb=(232, 119, 34),
    ) -> None:
        if not -1.0 <= target_offset <= 1.0:
            raise ConfigurationError("target_offset must be in [-1, 1]")
        self.target_offset = float(target_offset)
        self.gain = float(gain)
        self.throttle = float(throttle)
        self.tape_rgb = tape_rgb
        self._last_steering = 0.0

    def run(self, image: np.ndarray | None) -> tuple[float, float]:
        """Drive-loop part interface."""
        if image is None:
            return 0.0, 0.0
        offset = line_offset(image, self.tape_rgb)
        if offset is None:
            # Lost the line: keep turning the way we last turned.
            steering = float(np.clip(self._last_steering * 1.5 or 0.3, -1, 1))
            return steering, self.throttle * 0.6
        steering = float(np.clip(self.gain * (offset - self.target_offset), -1, 1))
        self._last_steering = steering
        return steering, self.throttle


# ----------------------------------------------------- obstacle


def detect_obstacle(
    image: np.ndarray,
    background: np.ndarray,
    threshold: int = 45,
    min_pixels: int = 60,
) -> bool:
    """Detect an unexpected object by differencing against the expected
    view (the rendered frame for the same pose).

    Returns True when a connected-enough blob of changed pixels appears
    in the lower half of the frame.
    """
    if image.shape != background.shape:
        raise ConfigurationError(
            f"image {image.shape} vs background {background.shape}"
        )
    diff = np.abs(image.astype(np.int32) - background.astype(np.int32)).sum(axis=2)
    changed = diff > threshold * 3
    lower = changed[changed.shape[0] // 2 :]
    return int(lower.sum()) >= min_pixels
