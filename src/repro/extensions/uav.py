"""Future-work extension (paper §6): UAVs and precision agriculture.

"AutoLearn can be extended in other technologies within these areas
including the integration of other intelligent autonomous vehicles in
general such as unmanned aerial vehicles or drones, in addition to
other applications such as precision agriculture that can lead to a
broader application integration including sensors or robots."

This module implements that preview: a planar quadrotor with
acceleration-limited velocity control, waypoint missions, and a
precision-agriculture survey that flies a lawnmower pattern over a
synthetic crop-stress field, samples it with a downward sensor, and
reports coverage and detected stress hotspots.  The UAV enrolls in
CHI@Edge exactly like a car (it is just another BYOD device).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.rng import ensure_rng

__all__ = [
    "UAVParams",
    "UAVState",
    "Quadrotor",
    "lawnmower_waypoints",
    "CropField",
    "SurveyReport",
    "fly_survey",
]


@dataclass(frozen=True)
class UAVParams:
    """Planar quadrotor limits (a small classroom drone)."""

    max_speed: float = 4.0  # m/s
    max_accel: float = 2.5  # m/s^2
    arrive_radius: float = 0.5  # waypoint capture radius (m)

    def __post_init__(self) -> None:
        if min(self.max_speed, self.max_accel, self.arrive_radius) <= 0:
            raise SimulationError("UAV parameters must be positive")


@dataclass(frozen=True)
class UAVState:
    """Planar position and velocity."""

    x: float = 0.0
    y: float = 0.0
    vx: float = 0.0
    vy: float = 0.0

    @property
    def position(self) -> np.ndarray:
        """(x, y) array."""
        return np.array([self.x, self.y])

    @property
    def speed(self) -> float:
        """Ground speed (m/s)."""
        return float(np.hypot(self.vx, self.vy))


class Quadrotor:
    """Acceleration-limited velocity controller toward waypoints."""

    def __init__(self, params: UAVParams = UAVParams()) -> None:
        self.params = params

    def step(self, state: UAVState, target: np.ndarray, dt: float) -> UAVState:
        """Advance toward ``target`` one control interval."""
        if dt <= 0:
            raise SimulationError(f"dt must be positive, got {dt}")
        p = self.params
        to_target = np.asarray(target, dtype=float) - state.position
        distance = float(np.linalg.norm(to_target))
        # Velocity setpoint: cruise toward the waypoint, braking so the
        # vehicle can stop within the remaining distance.
        brake_speed = np.sqrt(2.0 * p.max_accel * max(distance, 1e-9))
        target_speed = min(p.max_speed, brake_speed)
        desired_v = (
            to_target / distance * target_speed if distance > 1e-9
            else np.zeros(2)
        )
        dv = desired_v - np.array([state.vx, state.vy])
        dv_norm = float(np.linalg.norm(dv))
        max_dv = p.max_accel * dt
        if dv_norm > max_dv:
            dv *= max_dv / dv_norm
        vx, vy = state.vx + dv[0], state.vy + dv[1]
        return UAVState(
            x=state.x + vx * dt, y=state.y + vy * dt, vx=float(vx), vy=float(vy)
        )


def lawnmower_waypoints(
    width: float, height: float, swath: float, origin=(0.0, 0.0)
) -> np.ndarray:
    """Boustrophedon coverage pattern over a width x height field."""
    if min(width, height, swath) <= 0:
        raise ConfigurationError("field dimensions and swath must be positive")
    n_rows = max(1, int(np.ceil(height / swath)))
    ox, oy = origin
    points = []
    for row in range(n_rows + 1):
        y = oy + min(row * swath, height)
        if row % 2 == 0:
            points += [(ox, y), (ox + width, y)]
        else:
            points += [(ox + width, y), (ox, y)]
    return np.asarray(points, dtype=float)


class CropField:
    """A synthetic crop-stress map: smooth background plus hotspots."""

    def __init__(
        self,
        width: float,
        height: float,
        n_hotspots: int = 4,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if min(width, height) <= 0 or n_hotspots < 0:
            raise ConfigurationError("invalid field configuration")
        gen = ensure_rng(rng)
        self.width = float(width)
        self.height = float(height)
        self.hotspots = np.column_stack(
            [
                gen.uniform(0.1 * width, 0.9 * width, n_hotspots),
                gen.uniform(0.1 * height, 0.9 * height, n_hotspots),
            ]
        ) if n_hotspots else np.zeros((0, 2))
        self.hotspot_radius = 0.06 * max(width, height)

    def stress(self, points: np.ndarray) -> np.ndarray:
        """Stress index in [0, 1] at the given (N, 2) points."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        base = 0.12 + 0.05 * np.sin(pts[:, 0] / self.width * 3.1) * np.cos(
            pts[:, 1] / self.height * 2.3
        )
        for hotspot in self.hotspots:
            d2 = ((pts - hotspot) ** 2).sum(axis=1)
            base = base + 0.8 * np.exp(-d2 / (2 * self.hotspot_radius**2))
        return np.clip(base, 0.0, 1.0)


@dataclass
class SurveyReport:
    """Outcome of one survey flight."""

    samples: int
    flight_seconds: float
    distance: float
    coverage_fraction: float
    detections: list[tuple[float, float]] = field(default_factory=list)
    hotspots_found: int = 0
    hotspots_total: int = 0

    @property
    def recall(self) -> float:
        """Fraction of true hotspots detected."""
        if self.hotspots_total == 0:
            return 1.0
        return self.hotspots_found / self.hotspots_total


def fly_survey(
    fieldmap: CropField,
    swath: float = 2.0,
    dt: float = 0.1,
    stress_threshold: float = 0.5,
    params: UAVParams = UAVParams(),
    max_steps: int = 50_000,
    cell: float = 1.0,
) -> SurveyReport:
    """Fly the lawnmower pattern, sampling stress under the UAV.

    Detection clusters samples above ``stress_threshold`` and matches
    them to the field's true hotspots within the hotspot radius.
    """
    waypoints = lawnmower_waypoints(fieldmap.width, fieldmap.height, swath)
    uav = Quadrotor(params)
    state = UAVState(x=waypoints[0][0], y=waypoints[0][1])
    visited_cells: set[tuple[int, int]] = set()
    hot_samples: list[np.ndarray] = []
    distance = 0.0
    steps = 0
    for target in waypoints[1:]:
        while (
            float(np.linalg.norm(state.position - target)) > params.arrive_radius
        ):
            new_state = uav.step(state, target, dt)
            distance += float(np.linalg.norm(new_state.position - state.position))
            state = new_state
            steps += 1
            if steps >= max_steps:
                raise SimulationError("survey did not converge (max_steps)")
            position = state.position
            if 0 <= position[0] <= fieldmap.width and 0 <= position[1] <= fieldmap.height:
                # The downward sensor sees a swath/2 half-width strip.
                col = int(position[0] // cell)
                lo = int(max(position[1] - swath / 2.0, 0.0) // cell)
                hi = int(min(position[1] + swath / 2.0, fieldmap.height - 1e-9) // cell)
                for row in range(lo, hi + 1):
                    visited_cells.add((col, row))
                if float(fieldmap.stress(position[None])[0]) >= stress_threshold:
                    hot_samples.append(position.copy())

    # Cluster hot samples to detections (greedy, hotspot-radius sized).
    detections: list[np.ndarray] = []
    for sample in hot_samples:
        if all(
            np.linalg.norm(sample - d) > 2.0 * fieldmap.hotspot_radius
            for d in detections
        ):
            detections.append(sample)
    found = sum(
        any(
            np.linalg.norm(hotspot - d) <= 1.5 * fieldmap.hotspot_radius
            for d in detections
        )
        for hotspot in fieldmap.hotspots
    )
    total_cells = int(np.ceil(fieldmap.width / cell)) * int(
        np.ceil(fieldmap.height / cell)
    )
    return SurveyReport(
        samples=steps,
        flight_seconds=steps * dt,
        distance=distance,
        coverage_fraction=len(visited_cells) / max(total_cells, 1),
        detections=[(float(d[0]), float(d[1])) for d in detections],
        hotspots_found=int(found),
        hotspots_total=len(fieldmap.hotspots),
    )
