"""Reinforcement learning in the simulator (paper §3.3/§3.4, E10).

"experiment with reinforcement learning providing the opportunity for
more advanced assignments".  The assignment trains a driving policy
from reward instead of demonstrations, using the gym-style
:class:`~repro.sim.server.SimulatorServer`.

The default policy is *state-based* (cross-track error, heading error
to a lookahead point, speed) trained with the cross-entropy method —
small, deterministic, and converging in seconds, which is what a
classroom exercise needs.  The state features are what a student would
compute from the camera with the line-following utilities; using the
simulator telemetry directly keeps the RL lesson about *learning*, not
perception (the supervised models own the vision problem).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.sim.server import SimulatorServer

__all__ = ["LinearPolicy", "CEMConfig", "train_cem", "RLPilot"]


class LinearPolicy:
    """steering = tanh(w . features + b); throttle fixed.

    Features: [cte, heading error to lookahead, speed].
    """

    N_FEATURES = 3

    def __init__(self, weights: np.ndarray | None = None, throttle: float = 0.45):
        if weights is None:
            weights = np.zeros(self.N_FEATURES + 1)
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.N_FEATURES + 1,):
            raise ConfigurationError(
                f"weights must have shape ({self.N_FEATURES + 1},), got {weights.shape}"
            )
        self.weights = weights
        self.throttle = float(throttle)

    def features(self, server: SimulatorServer) -> np.ndarray:
        """Extract the state features from the live session."""
        session = server.session
        state = session.state
        track = session.track
        query = track.query(np.array([[state.x, state.y]]))
        s_now = float(query.arclength[0])
        cte = float(query.signed_cte[0])
        target = track.point_at(s_now + 0.6)
        heading_to = np.arctan2(target[1] - state.y, target[0] - state.x)
        heading_err = np.arctan2(
            np.sin(heading_to - state.heading), np.cos(heading_to - state.heading)
        )
        return np.array([cte, float(heading_err), state.speed])

    def act(self, features: np.ndarray) -> tuple[float, float]:
        """Map features to (steering, throttle)."""
        z = float(self.weights[:-1] @ features + self.weights[-1])
        return float(np.tanh(z)), self.throttle


@dataclass(frozen=True)
class CEMConfig:
    """Cross-entropy method hyperparameters."""

    iterations: int = 12
    population: int = 24
    elite_fraction: float = 0.25
    init_sigma: float = 1.0
    episode_steps: int = 250
    extra_noise: float = 0.05

    def __post_init__(self) -> None:
        if self.iterations < 1 or self.population < 2:
            raise ConfigurationError("need iterations >= 1 and population >= 2")
        if not 0.0 < self.elite_fraction <= 1.0:
            raise ConfigurationError("elite_fraction must be in (0, 1]")


def _rollout(
    server: SimulatorServer, policy: LinearPolicy, steps: int
) -> float:
    """One episode; returns the total reward."""
    server.reset()
    total = 0.0
    for _ in range(steps):
        features = policy.features(server)
        action = policy.act(features)
        _obs, reward, done, _info = server.step(action)
        total += reward
        if done:
            break
    return total


def train_cem(
    track_name: str = "default-tape-oval",
    config: CEMConfig | None = None,
    seed: int = 0,
    throttle: float = 0.45,
) -> tuple[LinearPolicy, list[float]]:
    """Cross-entropy method over the linear policy.

    Returns the trained policy and the per-iteration mean elite reward
    (the learning curve the assignment plots).
    """
    config = config or CEMConfig()
    rng = ensure_rng(seed)
    server = SimulatorServer(track_name, seed=seed, render=False,
                             max_episode_steps=config.episode_steps)
    dim = LinearPolicy.N_FEATURES + 1
    mean = np.zeros(dim)
    sigma = np.full(dim, config.init_sigma)
    n_elite = max(1, int(round(config.elite_fraction * config.population)))
    curve: list[float] = []
    for _ in range(config.iterations):
        candidates = mean + sigma * rng.standard_normal((config.population, dim))
        rewards = np.array(
            [
                _rollout(server, LinearPolicy(c, throttle), config.episode_steps)
                for c in candidates
            ]
        )
        elite = candidates[np.argsort(rewards)[-n_elite:]]
        mean = elite.mean(axis=0)
        sigma = elite.std(axis=0) + config.extra_noise
        curve.append(float(rewards[np.argsort(rewards)[-n_elite:]].mean()))
    return LinearPolicy(mean, throttle), curve


class RLPilot:
    """Vehicle part wrapping a trained RL policy.

    Uses the live session telemetry for features (the policy's state
    interface), so it plugs into :class:`DrivingSession.run` as a
    pilot callable.
    """

    def __init__(self, policy: LinearPolicy, server: SimulatorServer) -> None:
        self.policy = policy
        self.server = server

    def __call__(self, observation) -> tuple[float, float]:
        features = self.policy.features(self.server)
        return self.policy.act(features)
