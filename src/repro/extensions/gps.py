"""GPS path following (paper §3.3 extension, E10).

"path following (record a path with GPS and have the car follow that
path)" — the car records a GPS trace of a manually driven path, then a
pure-pursuit follower tracks the recorded waypoints instead of the
track centreline.  The GPS receiver model adds bias-random-walk plus
white noise (RTK-grade by default, tunable down to hobby-grade), which
is what makes the exercise interesting: path quality degrades with
receiver quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.sim.session import DrivingSession

__all__ = ["GPSReceiver", "GPSTrace", "record_gps_path", "PathFollower"]


class GPSReceiver:
    """Positions with white noise plus a slow bias random walk."""

    def __init__(
        self,
        white_sigma: float = 0.02,
        bias_walk_sigma: float = 0.002,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if white_sigma < 0 or bias_walk_sigma < 0:
            raise ConfigurationError("noise sigmas must be non-negative")
        self.white_sigma = float(white_sigma)
        self.bias_walk_sigma = float(bias_walk_sigma)
        self.rng = ensure_rng(rng)
        self._bias = np.zeros(2)

    def fix(self, x: float, y: float) -> tuple[float, float]:
        """One position fix."""
        self._bias += self.rng.normal(0.0, self.bias_walk_sigma, 2)
        noise = self.rng.normal(0.0, self.white_sigma, 2)
        return float(x + self._bias[0] + noise[0]), float(y + self._bias[1] + noise[1])


@dataclass(frozen=True)
class GPSTrace:
    """A recorded path: fixes at the drive-loop rate."""

    points: np.ndarray  # (N, 2)
    dt: float

    def __post_init__(self) -> None:
        if self.points.ndim != 2 or self.points.shape[1] != 2 or len(self.points) < 2:
            raise ConfigurationError("trace needs at least 2 (x, y) fixes")

    def decimate(self, every: int) -> "GPSTrace":
        """Keep every ``every``-th fix (waypoint thinning)."""
        if every < 1:
            raise ConfigurationError(f"every must be >= 1, got {every}")
        return GPSTrace(self.points[::every].copy(), self.dt * every)


def record_gps_path(
    session: DrivingSession,
    driver,
    ticks: int,
    receiver: GPSReceiver | None = None,
) -> GPSTrace:
    """Drive ``ticks`` with ``driver`` while logging GPS fixes."""
    if ticks < 2:
        raise ConfigurationError(f"need at least 2 ticks, got {ticks}")
    receiver = receiver or GPSReceiver()
    fixes = []
    obs = session._observe()
    for _ in range(ticks):
        steering, throttle = driver(obs.image, obs.cte, obs.speed)
        obs = session.step(steering, throttle)
        fixes.append(receiver.fix(obs.state.x, obs.state.y))
    return GPSTrace(np.asarray(fixes), session.dt)


class PathFollower:
    """Pure-pursuit over recorded GPS waypoints.

    Drive-loop part signature: called with (image, cte, speed) like
    other drivers, but steers toward the recorded path using the car's
    (GPS-estimated) pose, not the track.
    """

    def __init__(
        self,
        trace: GPSTrace,
        session: DrivingSession,
        receiver: GPSReceiver | None = None,
        lookahead: float = 0.5,
        speed: float = 1.0,
    ) -> None:
        if lookahead <= 0 or speed <= 0:
            raise ConfigurationError("lookahead and speed must be positive")
        self.trace = trace
        self.session = session
        self.receiver = receiver or GPSReceiver()
        self.lookahead = float(lookahead)
        self.target_speed = float(speed)
        self._max_angle = session.model.params.max_steering_angle
        self._wheelbase = session.model.params.wheelbase
        self._nearest = 0

    def cross_track_error(self) -> float:
        """Distance from the true pose to the nearest recorded point."""
        state = self.session.state
        d = np.linalg.norm(self.trace.points - state.position, axis=1)
        return float(d.min())

    def __call__(self, image, cte: float, speed: float) -> tuple[float, float]:
        state = self.session.state
        gx, gy = self.receiver.fix(state.x, state.y)
        pts = self.trace.points
        # Advance the nearest-waypoint cursor monotonically (wrapping).
        n = len(pts)
        window = (self._nearest + np.arange(0, n // 2)) % n
        d = np.linalg.norm(pts[window] - [gx, gy], axis=1)
        self._nearest = int(window[np.argmin(d)])
        # Lookahead target along the recorded path.
        target_idx = self._nearest
        acc = 0.0
        while acc < self.lookahead:
            nxt = (target_idx + 1) % n
            acc += float(np.linalg.norm(pts[nxt] - pts[target_idx]))
            target_idx = nxt
            if target_idx == self._nearest:
                break
        target = pts[target_idx]
        alpha = np.arctan2(target[1] - gy, target[0] - gx) - state.heading
        alpha = np.arctan2(np.sin(alpha), np.cos(alpha))
        dist = max(float(np.hypot(target[0] - gx, target[1] - gy)), 1e-6)
        wheel = np.arctan2(2.0 * self._wheelbase * np.sin(alpha), dist)
        steering = float(np.clip(wheel / self._max_angle, -1.0, 1.0))
        throttle = float(np.clip(0.6 * (self.target_speed - speed) + 0.25, 0.0, 1.0))
        return steering, throttle
