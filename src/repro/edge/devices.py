"""Edge devices: the car's Raspberry Pi (and friends).

The device model carries what the emulation needs: an inference speed
(sustained FLOP/s of the CPU running the autopilot), memory, and the
boot/flash timings that the BYOD "zero to ready" experiment (E4)
accounts.  The inference speed drives the edge side of the
edge-vs-cloud tradeoff (E6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import EdgeError

__all__ = ["DeviceSpec", "DeviceState", "EdgeDevice", "RASPBERRY_PI_4", "RASPBERRY_PI_3"]


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware capabilities of an edge device class."""

    model: str
    arch: str
    effective_flops: float  # sustained FP32 FLOP/s for NN inference
    mem_gb: float
    sd_flash_s: float  # time to flash the CHI@Edge SD image
    boot_s: float  # power-on to daemon-connected

    def __post_init__(self) -> None:
        if self.effective_flops <= 0 or self.mem_gb <= 0:
            raise EdgeError(f"invalid device spec for {self.model!r}")


#: The PiRacer's brain (paper kit): Raspberry Pi 4, 4 GB.
RASPBERRY_PI_4 = DeviceSpec(
    model="raspberry-pi-4",
    arch="aarch64",
    effective_flops=3.0e9,
    mem_gb=4.0,
    sd_flash_s=420.0,
    boot_s=55.0,
)

RASPBERRY_PI_3 = DeviceSpec(
    model="raspberry-pi-3",
    arch="aarch64",
    effective_flops=1.1e9,
    mem_gb=1.0,
    sd_flash_s=420.0,
    boot_s=75.0,
)


class DeviceState(enum.Enum):
    """BYOD enrollment lifecycle (paper §3.2)."""

    REGISTERED = "registered"  # CLI utility registered it with the testbed
    FLASHED = "flashed"  # SD card image written
    CONNECTED = "connected"  # daemon connected, allocatable
    RESERVED = "reserved"  # held by a lease
    OFFLINE = "offline"


@dataclass
class EdgeDevice:
    """One enrolled (or enrolling) device."""

    device_id: str
    name: str
    spec: DeviceSpec
    owner_project: str
    state: DeviceState = DeviceState.REGISTERED
    whitelist: set[str] = None  # project ids allowed to allocate
    connected_at: float = -1.0

    def __post_init__(self) -> None:
        if self.whitelist is None:
            self.whitelist = {self.owner_project}

    def allows(self, project_id: str) -> bool:
        """Whether a project may allocate this device."""
        return project_id in self.whitelist

    def inference_seconds(self, flops_per_frame: float) -> float:
        """Per-frame autopilot inference latency on this device."""
        if flops_per_frame <= 0:
            raise EdgeError(f"flops_per_frame must be positive: {flops_per_frame}")
        return flops_per_frame / self.spec.effective_flops
