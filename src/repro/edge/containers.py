"""Container engine on edge devices.

CHI@Edge reconfigures devices "by deploying a Docker container rather
than bare-metal reconfiguration" (§3.2).  The engine models image
pulls (sized images over the device's Wi-Fi), container lifecycle, and
the built-in Jupyter console — including the real system's quirk that
"text editing is not supported in the console at the present time"
(§3.5), which we reproduce as an explicit error.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.clock import Clock
from repro.common.errors import ContainerError
from repro.common.ids import IdFactory

__all__ = ["ContainerImage", "ContainerState", "Container", "ContainerEngine",
           "AUTOLEARN_IMAGE"]


@dataclass(frozen=True)
class ContainerImage:
    """A Docker image (name, size, preinstalled software)."""

    name: str
    size_mb: float
    software: frozenset[str]


#: The AutoLearn image: "a Docker image which pre-installs all
#: DonkeyCar dependencies" plus "Chameleon's Basic Jupyter Server
#: Appliance ... included in AutoLearn Docker image" (§3.5).
AUTOLEARN_IMAGE = ContainerImage(
    name="autolearn/donkeycar:latest",
    size_mb=1850.0,
    software=frozenset({"donkeycar", "python3", "jupyter", "tensorflow-lite"}),
)


class ContainerState(enum.Enum):
    """Container lifecycle."""

    PULLING = "pulling"
    RUNNING = "running"
    EXITED = "exited"


@dataclass
class Container:
    """A container instance on a device."""

    container_id: str
    image: ContainerImage
    device_id: str
    state: ContainerState = ContainerState.PULLING
    command_log: list[str] = field(default_factory=list)


class ContainerEngine:
    """Per-device Docker daemon emulation."""

    #: Wi-Fi image pull throughput (MB/s) — the dominant deploy cost.
    PULL_MBPS = 4.5
    #: Container start once the image is local.
    START_S = 8.0

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self._ids = IdFactory()
        self._containers: dict[str, Container] = {}
        self._image_cache: set[str] = set()

    def launch(self, device_id: str, image: ContainerImage) -> Container:
        """Pull (if needed) and start a container; advances sim time."""
        container = Container(
            container_id=self._ids.next("ctr"),
            image=image,
            device_id=device_id,
        )
        self._containers[container.container_id] = container
        if image.name not in self._image_cache:
            self.clock.advance(image.size_mb / self.PULL_MBPS)
            self._image_cache.add(image.name)
        self.clock.advance(self.START_S)
        container.state = ContainerState.RUNNING
        return container

    def stop(self, container_id: str) -> None:
        """Stop a running container."""
        container = self.get(container_id)
        if container.state is not ContainerState.RUNNING:
            raise ContainerError(
                f"container {container_id} is {container.state.value}"
            )
        container.state = ContainerState.EXITED

    def get(self, container_id: str) -> Container:
        """Look up a container."""
        try:
            return self._containers[container_id]
        except KeyError:
            raise ContainerError(f"unknown container {container_id!r}") from None

    # --------------------------------------------------------- console

    def console_exec(self, container_id: str, command: str) -> str:
        """Run a command in the built-in Jupyter console.

        Editors are rejected — the real console does not support text
        editing (§3.5): students work around it with ``sed``/redirects.
        """
        container = self.get(container_id)
        if container.state is not ContainerState.RUNNING:
            raise ContainerError(
                f"cannot exec in {container.state.value} container {container_id}"
            )
        binary = command.strip().split()[0] if command.strip() else ""
        if binary in ("vi", "vim", "nano", "emacs"):
            raise ContainerError(
                "text editing is not supported in the console at the present "
                "time (CHI@Edge limitation, paper §3.5); use sed or shell "
                "redirection instead"
            )
        self.clock.advance(0.2)
        container.command_log.append(command)
        if binary == "ls":
            return "data  models  mycar"
        if binary == "python" or binary == "python3":
            return "Python 3.9.2 (donkeycar container)"
        if binary.startswith("donkey"):
            return "using donkey v4.4.0 ..."
        return ""
