"""CHI@Edge BYOD enrollment and device allocation.

The full §3.2 pathway: "users can add devices to the testbed by
downloading a CHI@Edge command line utility and SD card image; the
utility registers the device with the testbed, and configures the SD
card image to be flashed onto the device.  Once booted up, the image
contains a daemon that connects the device to the testbed and
configures whitelist-based access policies for the added device.  From
there on, the added device can be allocated via the standard Chameleon
methods".

:class:`CHIEdge` is the service facade; the per-step timings feed the
"zero to ready" measurement (experiment E4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.clock import EventScheduler
from repro.common.errors import (
    DeviceNotEnrolledError,
    EdgeError,
    PolicyViolationError,
)
from repro.common.ids import IdFactory
from repro.edge.containers import AUTOLEARN_IMAGE, Container, ContainerEngine, ContainerImage
from repro.edge.devices import DeviceSpec, DeviceState, EdgeDevice, RASPBERRY_PI_4
from repro.testbed.identity import IdentityProvider, Session

__all__ = ["CHIEdge", "DeployReport"]

#: CLI utility download + registration round trip.
REGISTER_S = 35.0
#: Daemon connect + policy configuration after boot.
DAEMON_CONNECT_S = 20.0


@dataclass(frozen=True)
class DeployReport:
    """Timing breakdown of the one-cell 'zero to ready' deploy (E4)."""

    container: Container
    pull_and_start_s: float
    total_s: float
    steps: tuple[tuple[str, float], ...]


class CHIEdge:
    """The CHI@Edge service: BYOD devices as testbed resources."""

    def __init__(
        self, scheduler: EventScheduler, identity: IdentityProvider
    ) -> None:
        self.scheduler = scheduler
        self.identity = identity
        self.engine = ContainerEngine(scheduler.clock)
        self._ids = IdFactory()
        self._devices: dict[str, EdgeDevice] = {}
        self._allocations: dict[str, str] = {}  # device_id -> project_id

    # ------------------------------------------------------ enrollment

    def register_device(
        self,
        session: Session,
        name: str,
        spec: DeviceSpec = RASPBERRY_PI_4,
    ) -> EdgeDevice:
        """Step 1: the CLI utility registers the device."""
        self.identity.authenticate(session.token)
        device = EdgeDevice(
            device_id=self._ids.next("dev"),
            name=name,
            spec=spec,
            owner_project=session.project_id,
        )
        self._devices[device.device_id] = device
        self.scheduler.clock.advance(REGISTER_S)
        return device

    def flash_sd_image(self, device_id: str) -> None:
        """Step 2: write the configured SD card image."""
        device = self.get(device_id)
        if device.state is not DeviceState.REGISTERED:
            raise EdgeError(
                f"device {device_id} is {device.state.value}; flash follows "
                "registration"
            )
        self.scheduler.clock.advance(device.spec.sd_flash_s)
        device.state = DeviceState.FLASHED

    def boot_device(self, device_id: str) -> None:
        """Step 3: power on; the daemon connects and applies policies."""
        device = self.get(device_id)
        if device.state is not DeviceState.FLASHED:
            raise EdgeError(
                f"device {device_id} is {device.state.value}; boot follows flash"
            )
        self.scheduler.clock.advance(device.spec.boot_s + DAEMON_CONNECT_S)
        device.state = DeviceState.CONNECTED
        device.connected_at = self.scheduler.clock.now

    def enroll(
        self,
        session: Session,
        name: str,
        spec: DeviceSpec = RASPBERRY_PI_4,
    ) -> EdgeDevice:
        """The full register -> flash -> boot sequence."""
        device = self.register_device(session, name, spec)
        self.flash_sd_image(device.device_id)
        self.boot_device(device.device_id)
        return device

    # ---------------------------------------------------------- policy

    def share_with(self, device_id: str, project_id: str) -> None:
        """Add a project to the device whitelist (limited sharing)."""
        device = self.get(device_id)
        self.identity.project(project_id)  # must exist
        device.whitelist.add(project_id)

    # ------------------------------------------------------ allocation

    def allocate(self, session: Session, device_id: str) -> EdgeDevice:
        """Reserve a connected device through the standard methods."""
        self.identity.authenticate(session.token)
        device = self.get(device_id)
        if device.state is not DeviceState.CONNECTED:
            raise DeviceNotEnrolledError(
                f"device {device_id} is {device.state.value}; complete BYOD "
                "enrollment first"
            )
        if not device.allows(session.project_id):
            raise PolicyViolationError(
                f"project {session.project_id} is not whitelisted on "
                f"device {device_id}"
            )
        device.state = DeviceState.RESERVED
        self._allocations[device_id] = session.project_id
        return device

    def release(self, device_id: str) -> None:
        """Return a device to the connected pool."""
        device = self.get(device_id)
        if device.state is not DeviceState.RESERVED:
            raise EdgeError(f"device {device_id} is not reserved")
        device.state = DeviceState.CONNECTED
        self._allocations.pop(device_id, None)

    # -------------------------------------------------------- deploy

    def launch_container(
        self,
        session: Session,
        device_id: str,
        image: ContainerImage = AUTOLEARN_IMAGE,
    ) -> DeployReport:
        """The one-cell "zero to ready" deploy (§3.5).

        The device must be reserved by the caller's project.  Returns a
        per-step timing report — experiment E4's payload.
        """
        self.identity.authenticate(session.token)
        device = self.get(device_id)
        if self._allocations.get(device_id) != session.project_id:
            raise PolicyViolationError(
                f"device {device_id} is not allocated to project "
                f"{session.project_id}"
            )
        start = self.scheduler.clock.now
        container = self.engine.launch(device_id, image)
        pull_s = self.scheduler.clock.now - start
        return DeployReport(
            container=container,
            pull_and_start_s=pull_s,
            total_s=pull_s,
            steps=(("pull+start", pull_s),),
        )

    # ------------------------------------------------------------ misc

    def get(self, device_id: str) -> EdgeDevice:
        """Look up a device."""
        try:
            return self._devices[device_id]
        except KeyError:
            raise DeviceNotEnrolledError(f"unknown device {device_id!r}") from None

    def devices(self, state: DeviceState | None = None) -> list[EdgeDevice]:
        """All devices, optionally filtered by state."""
        out = list(self._devices.values())
        if state is not None:
            out = [d for d in out if d.state is state]
        return sorted(out, key=lambda d: d.device_id)
