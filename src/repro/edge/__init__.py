"""CHI@Edge emulation: BYOD devices, containers, whitelist policies."""

from repro.edge.byod import CHIEdge, DeployReport
from repro.edge.containers import (
    AUTOLEARN_IMAGE,
    Container,
    ContainerEngine,
    ContainerImage,
    ContainerState,
)
from repro.edge.devices import (
    RASPBERRY_PI_3,
    RASPBERRY_PI_4,
    DeviceSpec,
    DeviceState,
    EdgeDevice,
)

__all__ = [
    "CHIEdge",
    "DeployReport",
    "ContainerEngine",
    "Container",
    "ContainerImage",
    "ContainerState",
    "AUTOLEARN_IMAGE",
    "EdgeDevice",
    "DeviceSpec",
    "DeviceState",
    "RASPBERRY_PI_4",
    "RASPBERRY_PI_3",
]
