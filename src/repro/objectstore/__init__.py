"""Swift-like object store (Chameleon's object store, paper §3.5)."""

from repro.objectstore.store import Container, ObjectStore, StoredObject

__all__ = ["ObjectStore", "Container", "StoredObject"]
