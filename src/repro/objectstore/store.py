"""Swift-like object store.

"The collected datasets and the pre-trained models are stored in
Chameleon's object store and can be combined with other components of
the system in a 'mix and match' pathway." — §3.5.

Containers hold named objects (bytes) with ETags (MD5, as Swift
computes) and user metadata.  The store can persist to a directory so
examples survive process boundaries, but defaults to in-memory.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.common.errors import (
    NoSuchContainerError,
    NoSuchObjectError,
    ObjectStoreError,
)

__all__ = ["StoredObject", "Container", "ObjectStore"]


@dataclass
class StoredObject:
    """One object: payload plus Swift-style metadata."""

    name: str
    data: bytes
    etag: str
    content_type: str = "application/octet-stream"
    metadata: dict[str, str] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.data)


class Container:
    """A named bucket of objects."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._objects: dict[str, StoredObject] = {}

    def put(
        self,
        name: str,
        data: bytes,
        content_type: str = "application/octet-stream",
        metadata: dict[str, str] | None = None,
    ) -> StoredObject:
        """Store (or overwrite) an object; returns it with its ETag."""
        if not name:
            raise ObjectStoreError("object name must be non-empty")
        obj = StoredObject(
            name=name,
            data=bytes(data),
            etag=hashlib.md5(data).hexdigest(),
            content_type=content_type,
            metadata=dict(metadata or {}),
        )
        self._objects[name] = obj
        return obj

    def get(self, name: str) -> StoredObject:
        """Fetch an object."""
        try:
            return self._objects[name]
        except KeyError:
            raise NoSuchObjectError(
                f"no object {name!r} in container {self.name!r}"
            ) from None

    def delete(self, name: str) -> None:
        """Remove an object."""
        if name not in self._objects:
            raise NoSuchObjectError(f"no object {name!r} in container {self.name!r}")
        del self._objects[name]

    def list(self, prefix: str = "") -> list[str]:
        """Object names, optionally filtered by prefix."""
        return sorted(n for n in self._objects if n.startswith(prefix))

    @property
    def bytes_used(self) -> int:
        """Total payload bytes in this container."""
        return sum(obj.size for obj in self._objects.values())

    def __len__(self) -> int:
        return len(self._objects)


class ObjectStore:
    """Account-level view: named containers."""

    def __init__(self) -> None:
        self._containers: dict[str, Container] = {}

    def create_container(self, name: str) -> Container:
        """Create a container (idempotent, as in Swift)."""
        if not name or "/" in name:
            raise ObjectStoreError(f"invalid container name: {name!r}")
        return self._containers.setdefault(name, Container(name))

    def container(self, name: str) -> Container:
        """Fetch an existing container."""
        try:
            return self._containers[name]
        except KeyError:
            raise NoSuchContainerError(f"no container {name!r}") from None

    def delete_container(self, name: str, force: bool = False) -> None:
        """Delete a container (must be empty unless ``force``)."""
        container = self.container(name)
        if len(container) and not force:
            raise ObjectStoreError(
                f"container {name!r} is not empty ({len(container)} objects)"
            )
        del self._containers[name]

    def list_containers(self) -> list[str]:
        """All container names."""
        return sorted(self._containers)

    # -------------------------------------------------- (de)hydration

    def save_to_dir(self, root: str | Path) -> None:
        """Persist every object under ``root/<container>/<object>``."""
        root = Path(root)
        for cname, container in self._containers.items():
            cdir = root / cname
            cdir.mkdir(parents=True, exist_ok=True)
            index: dict[str, Any] = {}
            for oname in container.list():
                obj = container.get(oname)
                safe = oname.replace("/", "__")
                (cdir / safe).write_bytes(obj.data)
                index[oname] = {
                    "file": safe,
                    "etag": obj.etag,
                    "content_type": obj.content_type,
                    "metadata": obj.metadata,
                }
            (cdir / "_index.json").write_text(json.dumps(index, indent=2))

    @classmethod
    def load_from_dir(cls, root: str | Path) -> "ObjectStore":
        """Rebuild a store persisted by :meth:`save_to_dir`."""
        root = Path(root)
        store = cls()
        for cdir in sorted(p for p in root.iterdir() if p.is_dir()):
            container = store.create_container(cdir.name)
            index_path = cdir / "_index.json"
            if not index_path.exists():
                raise ObjectStoreError(f"missing index in {cdir}")
            index = json.loads(index_path.read_text())
            for oname, meta in index.items():
                data = (cdir / meta["file"]).read_bytes()
                obj = container.put(
                    oname, data, meta["content_type"], meta["metadata"]
                )
                if obj.etag != meta["etag"]:
                    raise ObjectStoreError(
                        f"etag mismatch reloading {cdir.name}/{oname}"
                    )
        return store
