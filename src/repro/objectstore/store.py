"""Swift-like object store.

"The collected datasets and the pre-trained models are stored in
Chameleon's object store and can be combined with other components of
the system in a 'mix and match' pathway." — §3.5.

Containers hold named objects (bytes) with ETags (MD5, as Swift
computes) and user metadata.  The store can persist to a directory so
examples survive process boundaries, but defaults to in-memory.

Real Swift returns 503s under load, so the store composes with the
fault layer: :meth:`ObjectStore.attach_resilience` wires a
:class:`~repro.faults.injector.FaultInjector` (``store-error`` faults
target ``"store:<container>"``), a retry policy, and per-container
circuit breakers in front of every container operation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.common.clock import Clock
from repro.common.errors import (
    ContainerQuotaError,
    NoSuchContainerError,
    NoSuchObjectError,
    ObjectStoreError,
    TransientStoreError,
)
from repro.common.rng import ensure_rng
from repro.faults.breaker import BreakerPolicy, CircuitBreaker
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind
from repro.faults.retry import RetryPolicy, call_with_resilience
from repro.obs.tracer import NullTracer, Tracer

__all__ = ["StoredObject", "Container", "ObjectStore"]


@dataclass
class StoredObject:
    """One object: payload plus Swift-style metadata."""

    name: str
    data: bytes
    etag: str
    content_type: str = "application/octet-stream"
    metadata: dict[str, str] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.data)


class Container:
    """A named bucket of objects.

    ``guard`` (installed by :meth:`ObjectStore.attach_resilience`) runs
    before every mutating or reading operation and raises
    :class:`TransientStoreError` / :class:`CircuitOpenError` when the
    fault layer says so — the in-memory dict itself never fails.
    """

    def __init__(
        self,
        name: str,
        guard: Callable[[str, str], None] | None = None,
        tracer: Tracer | None = None,
        quota_bytes: int | None = None,
    ) -> None:
        if quota_bytes is not None and quota_bytes < 0:
            raise ObjectStoreError(f"quota_bytes must be >= 0, got {quota_bytes}")
        self.name = name
        self.guard = guard
        self.tracer = tracer if tracer is not None else NullTracer()
        self.quota_bytes = quota_bytes
        self._objects: dict[str, StoredObject] = {}

    def _gate(self, op: str) -> None:
        if not self.tracer.enabled:
            if self.guard is not None:
                self.guard(self.name, op)
            return
        # The span brackets the fault gate (retries, breaker waits) —
        # the dict operation itself is instantaneous in sim time.
        with self.tracer.span(f"store.{op}", container=self.name):
            if self.guard is not None:
                self.guard(self.name, op)

    def put(
        self,
        name: str,
        data: bytes,
        content_type: str = "application/octet-stream",
        metadata: dict[str, str] | None = None,
    ) -> StoredObject:
        """Store (or overwrite) an object; returns it with its ETag."""
        if not name:
            raise ObjectStoreError("object name must be non-empty")
        self._gate("put")
        if self.quota_bytes is not None:
            existing = self._objects.get(name)
            projected = (
                self.bytes_used
                - (existing.size if existing is not None else 0)
                + len(data)
            )
            # Landing exactly on the quota is allowed; one byte over is not
            # (Swift's account quota semantics).
            if projected > self.quota_bytes:
                raise ContainerQuotaError(
                    f"put of {len(data)} bytes to {self.name!r}/{name!r} would "
                    f"use {projected} of {self.quota_bytes} quota bytes"
                )
        obj = StoredObject(
            name=name,
            data=bytes(data),
            etag=hashlib.md5(data).hexdigest(),
            content_type=content_type,
            metadata=dict(metadata or {}),
        )
        self._objects[name] = obj
        return obj

    def get(self, name: str) -> StoredObject:
        """Fetch an object."""
        self._gate("get")
        try:
            return self._objects[name]
        except KeyError:
            raise NoSuchObjectError(
                f"no object {name!r} in container {self.name!r}"
            ) from None

    def delete(self, name: str) -> None:
        """Remove an object."""
        self._gate("delete")
        if name not in self._objects:
            raise NoSuchObjectError(f"no object {name!r} in container {self.name!r}")
        del self._objects[name]

    def list(self, prefix: str = "") -> list[str]:
        """Object names, optionally filtered by prefix."""
        return sorted(n for n in self._objects if n.startswith(prefix))

    @property
    def bytes_used(self) -> int:
        """Total payload bytes in this container."""
        return sum(obj.size for obj in self._objects.values())

    def __len__(self) -> int:
        return len(self._objects)


class ObjectStore:
    """Account-level view: named containers."""

    def __init__(self) -> None:
        self._containers: dict[str, Container] = {}
        self._injector: FaultInjector | None = None
        self._clock: Clock | None = None
        self._retry: RetryPolicy | None = None
        self._breaker_policy: BreakerPolicy | None = None
        self._breakers: dict[str, CircuitBreaker] = {}
        self._rng: np.random.Generator | None = None
        self._tracer: Tracer = NullTracer()

    # ----------------------------------------------------------- tracing

    def attach_tracer(self, tracer: Tracer) -> None:
        """Trace every container operation as a ``store.<op>`` span.

        Applies to existing containers and any created afterwards.
        """
        self._tracer = tracer
        for container in self._containers.values():
            container.tracer = tracer

    # -------------------------------------------------------- resilience

    def attach_resilience(
        self,
        injector: FaultInjector | None = None,
        clock: Clock | None = None,
        retry: RetryPolicy | None = None,
        breaker_policy: BreakerPolicy | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        """Put the fault layer in front of every container operation.

        ``injector`` supplies ``store-error`` faults against
        ``"store:<container>"`` targets; ``retry`` backs failed
        operations off (sleeps charged to ``clock``); ``breaker_policy``
        builds one :class:`CircuitBreaker` per container so a flapping
        container fails fast while the others keep serving.  ``seed``
        feeds the backoff-jitter stream.
        """
        self._injector = injector
        self._clock = clock
        self._retry = retry
        self._breaker_policy = breaker_policy
        self._rng = ensure_rng(seed)
        for container in self._containers.values():
            container.guard = self._guard

    def breaker_for(self, container_name: str) -> CircuitBreaker | None:
        """The per-container breaker (None without a breaker policy)."""
        if self._breaker_policy is None:
            return None
        target = f"store:{container_name}"
        breaker = self._breakers.get(target)
        if breaker is None:
            breaker = CircuitBreaker(self._breaker_policy, name=target)
            self._breakers[target] = breaker
        return breaker

    def _guard(self, container_name: str, op: str) -> None:
        """Run one container operation's fault gate to completion."""
        if self._injector is None and self._breaker_policy is None:
            return
        target = f"store:{container_name}"

        def attempt() -> None:
            now = self._clock.now if self._clock is not None else 0.0
            if self._injector is not None and self._injector.should_fail(
                FaultKind.STORE_ERROR, target, now
            ):
                raise TransientStoreError(
                    f"transient {op} failure on {target}"
                )

        call_with_resilience(
            attempt,
            retry=self._retry,
            breaker=self.breaker_for(container_name),
            clock=self._clock,
            rng=self._rng,
            target=target,
        )

    def create_container(
        self, name: str, quota_bytes: int | None = None
    ) -> Container:
        """Create a container (idempotent, as in Swift).

        ``quota_bytes`` caps total payload bytes for a *new* container;
        re-creating an existing container leaves its quota untouched.
        """
        if not name or "/" in name:
            raise ObjectStoreError(f"invalid container name: {name!r}")
        guard = (
            self._guard
            if self._injector is not None or self._breaker_policy is not None
            else None
        )
        return self._containers.setdefault(
            name,
            Container(
                name, guard=guard, tracer=self._tracer, quota_bytes=quota_bytes
            ),
        )

    def container(self, name: str) -> Container:
        """Fetch an existing container."""
        try:
            return self._containers[name]
        except KeyError:
            raise NoSuchContainerError(f"no container {name!r}") from None

    def delete_container(self, name: str, force: bool = False) -> None:
        """Delete a container (must be empty unless ``force``)."""
        container = self.container(name)
        if len(container) and not force:
            raise ObjectStoreError(
                f"container {name!r} is not empty ({len(container)} objects)"
            )
        del self._containers[name]

    def list_containers(self) -> list[str]:
        """All container names."""
        return sorted(self._containers)

    # -------------------------------------------------- (de)hydration

    def save_to_dir(self, root: str | Path) -> None:
        """Persist every object under ``root/<container>/<object>``."""
        root = Path(root)
        for cname in self.list_containers():
            container = self._containers[cname]
            cdir = root / cname
            cdir.mkdir(parents=True, exist_ok=True)
            objects: dict[str, Any] = {}
            for oname in container.list():
                obj = container.get(oname)
                safe = oname.replace("/", "__")
                (cdir / safe).write_bytes(obj.data)
                objects[oname] = {
                    "file": safe,
                    "etag": obj.etag,
                    "content_type": obj.content_type,
                    "metadata": obj.metadata,
                }
            index = {"quota_bytes": container.quota_bytes, "objects": objects}
            (cdir / "_index.json").write_text(json.dumps(index, indent=2))

    @classmethod
    def load_from_dir(cls, root: str | Path) -> "ObjectStore":
        """Rebuild a store persisted by :meth:`save_to_dir`."""
        root = Path(root)
        store = cls()
        for cdir in sorted(p for p in root.iterdir() if p.is_dir()):
            index_path = cdir / "_index.json"
            if not index_path.exists():
                raise ObjectStoreError(f"missing index in {cdir}")
            index = json.loads(index_path.read_text())
            container = store.create_container(
                cdir.name, quota_bytes=index.get("quota_bytes")
            )
            for oname, meta in index.get("objects", {}).items():
                data = (cdir / meta["file"]).read_bytes()
                obj = container.put(
                    oname, data, meta["content_type"], meta["metadata"]
                )
                if obj.etag != meta["etag"]:
                    raise ObjectStoreError(
                        f"etag mismatch reloading {cdir.name}/{oname}"
                    )
        return store
