"""Record schema for driving data.

DonkeyCar's tub v2 format stores one JSON record per drive-loop tick
with keys like ``cam/image_array``, ``user/angle``, ``user/throttle``,
``user/mode``.  :class:`DriveRecord` is the typed in-memory form; the
tub layer (:mod:`repro.data.tub`) handles the on-disk encoding.

The reproduction extends the schema with simulator telemetry
(``sim/cte``, ``sim/speed``, ``sim/off_track``) — the real module gets
the equivalent signal from students watching the tubclean video; the
synthetic drivers use it to label bad data (see
:mod:`repro.data.tubclean`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.common.errors import DataError

__all__ = ["DriveRecord", "RECORD_INPUTS", "RECORD_TYPES"]

#: Tub manifest ``inputs`` — field names in DonkeyCar order.
RECORD_INPUTS = [
    "cam/image_array",
    "user/angle",
    "user/throttle",
    "user/mode",
    "sim/cte",
    "sim/speed",
    "sim/off_track",
]

#: Tub manifest ``types`` matching :data:`RECORD_INPUTS`.
RECORD_TYPES = [
    "image_array",
    "float",
    "float",
    "str",
    "float",
    "float",
    "boolean",
]


@dataclass
class DriveRecord:
    """One drive-loop tick: camera frame plus control labels.

    Attributes
    ----------
    image:
        HxWx3 uint8 camera frame.
    angle:
        Normalised steering in ``[-1, 1]`` (DonkeyCar "angle").
    throttle:
        Normalised throttle in ``[-1, 1]``.
    mode:
        ``"user"`` for manual driving, ``"pilot"`` for autopilot, or
        ``"local_angle"`` for the steer-only race mode the paper
        mentions (constant throttle, pilot steers).
    cte / speed / off_track:
        Simulator telemetry at capture time.
    timestamp_ms:
        Capture time in integer milliseconds (simulated clock).
    extras:
        Additional key/value pairs preserved through the tub round-trip
        (e.g. GPS fields from the path-following extension).
    """

    image: np.ndarray
    angle: float
    throttle: float
    mode: str = "user"
    cte: float = 0.0
    speed: float = 0.0
    off_track: bool = False
    timestamp_ms: int = 0
    extras: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        img = np.asarray(self.image)
        if img.ndim != 3 or img.shape[2] != 3 or img.dtype != np.uint8:
            raise DataError(
                f"image must be HxWx3 uint8, got shape={img.shape} dtype={img.dtype}"
            )
        self.image = img
        if not -1.0 <= self.angle <= 1.0:
            raise DataError(f"angle out of [-1, 1]: {self.angle}")
        if not -1.0 <= self.throttle <= 1.0:
            raise DataError(f"throttle out of [-1, 1]: {self.throttle}")
        if self.mode not in ("user", "pilot", "local_angle"):
            raise DataError(f"unknown drive mode: {self.mode!r}")

    def to_fields(self, image_ref: str) -> dict[str, Any]:
        """Flatten to tub-record fields, with the image by reference."""
        fields: dict[str, Any] = {
            "cam/image_array": image_ref,
            "user/angle": float(self.angle),
            "user/throttle": float(self.throttle),
            "user/mode": self.mode,
            "sim/cte": float(self.cte),
            "sim/speed": float(self.speed),
            "sim/off_track": bool(self.off_track),
            "_timestamp_ms": int(self.timestamp_ms),
        }
        fields.update(self.extras)
        return fields

    @classmethod
    def from_fields(cls, fields: dict[str, Any], image: np.ndarray) -> "DriveRecord":
        """Rebuild a record from tub fields plus the loaded image."""
        known = {
            "cam/image_array",
            "user/angle",
            "user/throttle",
            "user/mode",
            "sim/cte",
            "sim/speed",
            "sim/off_track",
            "_timestamp_ms",
            "_index",
            "_session_id",
        }
        extras = {k: v for k, v in fields.items() if k not in known}
        return cls(
            image=image,
            angle=float(fields["user/angle"]),
            throttle=float(fields["user/throttle"]),
            mode=str(fields.get("user/mode", "user")),
            cte=float(fields.get("sim/cte", 0.0)),
            speed=float(fields.get("sim/speed", 0.0)),
            off_track=bool(fields.get("sim/off_track", False)),
            timestamp_ms=int(fields.get("_timestamp_ms", 0)),
            extras=extras,
        )
