"""``tubclean``: removing bad data before training.

"Learners will likely generate some bad data consisting of mistakes
(i.e., crashes or images that are off-side) while driving; this data
need to be deleted for the training set to represent a valid scenario.
This step is done manually by using the tubclean utility ... which
plays a video of the collected images; users watch the video, select
the parts that need to be deleted, which the program then correlates to
invalid data records" — paper §3.3.

Two interfaces are reproduced:

* the **manual** path: :meth:`TubCleaner.review` iterates the tub as
  contiguous :class:`Segment` "video" chunks with summary statistics,
  and :meth:`TubCleaner.mark_segment` / :meth:`TubCleaner.mark_range`
  correlate a selected chunk back to record indexes — exactly what the
  web UI does;
* an **automatic** path used by the synthetic students:
  :meth:`TubCleaner.find_bad_spans` flags crash frames, off-side
  frames, and stalled sections from telemetry and control statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.tub import Tub

__all__ = ["Segment", "BadSpan", "TubCleaner"]


@dataclass(frozen=True)
class Segment:
    """A contiguous chunk of records, as shown in the review 'video'."""

    start: int  # first record index (inclusive)
    stop: int  # last record index (exclusive)
    mean_speed: float
    mean_abs_angle: float
    max_abs_cte: float
    crash_count: int

    @property
    def indexes(self) -> range:
        """Record indexes covered by this segment."""
        return range(self.start, self.stop)


@dataclass(frozen=True)
class BadSpan:
    """A span of records flagged for deletion, with the reason."""

    start: int
    stop: int
    reason: str  # "crash" | "offside" | "stalled"

    @property
    def indexes(self) -> range:
        """Record indexes covered by this span."""
        return range(self.start, self.stop)


class TubCleaner:
    """Review and clean one tub."""

    def __init__(
        self,
        tub: Tub,
        offside_cte_fraction: float = 0.9,
        stall_speed: float = 0.05,
        stall_min_steps: int = 20,
        crash_margin: int = 5,
    ) -> None:
        """
        Parameters
        ----------
        offside_cte_fraction:
            Records whose unsigned cross-track error exceeds this
            fraction of the half lane width count as "off-side images".
        stall_speed / stall_min_steps:
            A run of at least ``stall_min_steps`` records below
            ``stall_speed`` m/s is a stall (driver stopped, data
            carries no steering signal).
        crash_margin:
            Records flagged around each crash on both sides — the
            frames leading into a crash teach the model the mistake.
        """
        self.tub = tub
        self.offside_cte_fraction = float(offside_cte_fraction)
        self.stall_speed = float(stall_speed)
        self.stall_min_steps = int(stall_min_steps)
        self.crash_margin = int(crash_margin)

    # ------------------------------------------------------- telemetry

    def _telemetry(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(indexes, angle, speed, cte, off_track) arrays, all records."""
        idx, angle, speed, cte, off = [], [], [], [], []
        for fields in self.tub.iter_fields(include_deleted=True):
            idx.append(fields["_index"])
            angle.append(fields["user/angle"])
            speed.append(fields.get("sim/speed", 0.0))
            cte.append(fields.get("sim/cte", 0.0))
            off.append(bool(fields.get("sim/off_track", False)))
        return (
            np.asarray(idx, dtype=np.int64),
            np.asarray(angle, dtype=np.float64),
            np.asarray(speed, dtype=np.float64),
            np.asarray(cte, dtype=np.float64),
            np.asarray(off, dtype=bool),
        )

    # ---------------------------------------------------------- manual

    def review(self, segment_len: int = 100) -> list[Segment]:
        """Split the tub into 'video' segments with summary statistics."""
        if segment_len <= 0:
            raise ValueError(f"segment_len must be positive, got {segment_len}")
        idx, angle, speed, cte, off = self._telemetry()
        segments: list[Segment] = []
        for lo in range(0, len(idx), segment_len):
            hi = min(lo + segment_len, len(idx))
            segments.append(
                Segment(
                    start=int(idx[lo]),
                    stop=int(idx[hi - 1]) + 1,
                    mean_speed=float(speed[lo:hi].mean()),
                    mean_abs_angle=float(np.abs(angle[lo:hi]).mean()),
                    max_abs_cte=float(np.abs(cte[lo:hi]).max()),
                    crash_count=int(off[lo:hi].sum()),
                )
            )
        return segments

    def mark_segment(self, segment: Segment) -> None:
        """Mark a reviewed segment for deletion (the UI 'select' action)."""
        self.tub.mark_deleted(list(segment.indexes))

    def mark_range(self, start: int, stop: int) -> None:
        """Mark an arbitrary index range [start, stop) for deletion."""
        valid = set(self.tub.indexes(include_deleted=True))
        self.tub.mark_deleted([i for i in range(start, stop) if i in valid])

    # ------------------------------------------------------- automatic

    def find_bad_spans(self, half_width: float | None = None) -> list[BadSpan]:
        """Flag crash, off-side, and stalled spans from telemetry.

        ``half_width`` (m) scales the off-side threshold; if ``None``
        it is taken from the tub metadata (``track_half_width``) or
        defaults to 0.35 m (the paper oval).
        """
        if half_width is None:
            half_width = float(self.tub.metadata.get("track_half_width", 0.35))
        idx, _angle, speed, cte, off = self._telemetry()
        if len(idx) == 0:
            return []
        bad: list[BadSpan] = []

        # Crashes, padded by crash_margin on both sides.
        for lo, hi in _runs(off):
            start = max(0, lo - self.crash_margin)
            stop = min(len(idx), hi + self.crash_margin)
            bad.append(BadSpan(int(idx[start]), int(idx[stop - 1]) + 1, "crash"))

        # Off-side (large |cte| but not literally off the track).
        offside = (np.abs(cte) > self.offside_cte_fraction * half_width) & ~off
        for lo, hi in _runs(offside):
            bad.append(BadSpan(int(idx[lo]), int(idx[hi - 1]) + 1, "offside"))

        # Stalls.
        stalled = speed < self.stall_speed
        for lo, hi in _runs(stalled):
            if hi - lo >= self.stall_min_steps:
                bad.append(BadSpan(int(idx[lo]), int(idx[hi - 1]) + 1, "stalled"))

        bad.sort(key=lambda span: (span.start, span.stop))
        return bad

    def clean(self, half_width: float | None = None) -> int:
        """Mark every automatically flagged record; returns count marked."""
        before = len(self.tub.deleted_indexes)
        valid = set(self.tub.indexes(include_deleted=True))
        for span in self.find_bad_spans(half_width=half_width):
            self.tub.mark_deleted([i for i in span.indexes if i in valid])
        return len(self.tub.deleted_indexes) - before


def _runs(mask: np.ndarray) -> list[tuple[int, int]]:
    """Contiguous True runs in a boolean array as (start, stop) pairs."""
    if not mask.any():
        return []
    padded = np.concatenate([[False], mask, [False]])
    changes = np.flatnonzero(padded[1:] != padded[:-1])
    return list(zip(changes[0::2], changes[1::2]))
