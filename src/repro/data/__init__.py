"""Tub datastore, cleaning, and dataset loading (DonkeyCar tub v2)."""

from repro.data.catalog import DEFAULT_MAX_LEN, Catalog
from repro.data.datasets import (
    N_STEERING_BINS,
    ArraySplit,
    TubDataset,
    augment_brightness,
    augment_flip,
    images_to_float,
    linear_bin,
    linear_unbin,
)
from repro.data.records import RECORD_INPUTS, RECORD_TYPES, DriveRecord
from repro.data.tub import Tub
from repro.data.tubclean import BadSpan, Segment, TubCleaner

__all__ = [
    "Catalog",
    "DEFAULT_MAX_LEN",
    "TubDataset",
    "ArraySplit",
    "images_to_float",
    "linear_bin",
    "linear_unbin",
    "augment_flip",
    "augment_brightness",
    "N_STEERING_BINS",
    "DriveRecord",
    "RECORD_INPUTS",
    "RECORD_TYPES",
    "Tub",
    "TubCleaner",
    "Segment",
    "BadSpan",
]
