"""The tub: DonkeyCar's on-disk dataset (images + catalogs + manifest).

Layout (paper §3.3, matching DonkeyCar tub v2)::

    <tub>/
      manifest.json             # inputs/types, catalog list, deletions
      catalog_0.catalog         # JSONL records 0..999
      catalog_0.catalog_manifest
      catalog_1.catalog         # records 1000..1999
      ...
      images/
        0_cam_image_array_.npy
        1_cam_image_array_.npy

"By default, all data is stored on the Raspberry Pi /car/data and can
be manually transferred to the cloud using SSH" — the tub directory is
exactly what gets rsync'd (see :mod:`repro.net.transfer`).

One substitution: DonkeyCar writes JPEG images; with no image codec
available offline we store raw ``.npy`` frames.  The bytes differ but
every consumer (training loader, tubclean, transfer sizing) goes
through :meth:`Tub.load_image`, so the pipeline is unaffected; transfer
benchmarks account for the size ratio explicitly.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.common.errors import RecordNotFoundError, TubError
from repro.data.catalog import DEFAULT_MAX_LEN, Catalog
from repro.data.records import RECORD_INPUTS, RECORD_TYPES, DriveRecord

__all__ = ["Tub"]

_MANIFEST = "manifest.json"
_IMAGE_DIR = "images"
_IMAGE_SUFFIX = "_cam_image_array_.npy"


class Tub:
    """A tub dataset rooted at a directory.

    Open an existing tub with ``Tub(path)`` or create one with
    ``Tub.create(path)``.  Appends go through :meth:`write_record`;
    bulk writers should wrap appends in :meth:`bulk` (defers sidecar
    flushes) and must call :meth:`close` (or use the tub as a context
    manager) to persist the manifest.
    """

    def __init__(self, path: str | Path, max_catalog_len: int = DEFAULT_MAX_LEN):
        self.path = Path(path)
        self.images_dir = self.path / _IMAGE_DIR
        self._max_catalog_len = int(max_catalog_len)
        manifest = self.path / _MANIFEST
        if not manifest.exists():
            raise TubError(
                f"{self.path} is not a tub (no {_MANIFEST}); use Tub.create()"
            )
        meta = json.loads(manifest.read_text())
        self.inputs: list[str] = list(meta["inputs"])
        self.types: list[str] = list(meta["types"])
        self.metadata: dict[str, Any] = dict(meta.get("metadata", {}))
        self.deleted_indexes: set[int] = set(meta.get("deleted_indexes", []))
        self._session_id: str = meta.get("session_id", "session-0")
        self._max_catalog_len = int(meta.get("max_catalog_len", max_catalog_len))
        self._catalogs: list[Catalog] = []
        for name in meta.get("catalogs", []):
            cat = Catalog(self.path / name, start_index=0)  # start read from sidecar
            self._catalogs.append(cat)
        self._catalogs.sort(key=lambda c: c.start_index)
        self._bulk_depth = 0

    # ------------------------------------------------------- lifecycle

    @classmethod
    def create(
        cls,
        path: str | Path,
        metadata: dict[str, Any] | None = None,
        max_catalog_len: int = DEFAULT_MAX_LEN,
        session_id: str = "session-0",
    ) -> "Tub":
        """Create an empty tub directory (must not already be a tub)."""
        root = Path(path)
        if (root / _MANIFEST).exists():
            raise TubError(f"tub already exists at {root}")
        (root / _IMAGE_DIR).mkdir(parents=True, exist_ok=True)
        manifest = {
            "inputs": RECORD_INPUTS,
            "types": RECORD_TYPES,
            "metadata": metadata or {},
            "catalogs": [],
            "deleted_indexes": [],
            "session_id": session_id,
            "max_catalog_len": max_catalog_len,
        }
        (root / _MANIFEST).write_text(json.dumps(manifest, indent=2))
        return cls(root, max_catalog_len=max_catalog_len)

    def flush(self) -> None:
        """Persist the tub manifest and all catalog sidecars."""
        for cat in self._catalogs:
            cat.flush()
        manifest = {
            "inputs": self.inputs,
            "types": self.types,
            "metadata": self.metadata,
            "catalogs": [cat.path.name for cat in self._catalogs],
            "deleted_indexes": sorted(self.deleted_indexes),
            "session_id": self._session_id,
            "max_catalog_len": self._max_catalog_len,
        }
        (self.path / _MANIFEST).write_text(json.dumps(manifest, indent=2))

    close = flush

    def __enter__(self) -> "Tub":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.flush()

    def bulk(self) -> "_BulkWriter":
        """Context manager deferring sidecar flushes during mass appends."""
        return _BulkWriter(self)

    # ----------------------------------------------------------- write

    def write_record(self, record: DriveRecord) -> int:
        """Append a record; stores the image and returns its index."""
        catalog = self._current_catalog()
        index = catalog.start_index + catalog.count
        image_name = f"{index}{_IMAGE_SUFFIX}"
        np.save(self.images_dir / image_name, record.image, allow_pickle=False)
        written = catalog.append(record.to_fields(image_ref=image_name))
        if written != index:
            raise TubError(f"index skew: expected {index}, catalog wrote {written}")
        if self._bulk_depth == 0:
            self.flush()
        return index

    def _current_catalog(self) -> Catalog:
        if self._catalogs and not self._catalogs[-1].is_full:
            return self._catalogs[-1]
        start = self._catalogs[-1].start_index + self._catalogs[-1].count if self._catalogs else 0
        k = len(self._catalogs)
        cat = Catalog(
            self.path / f"catalog_{k}.catalog",
            start_index=start,
            max_len=self._max_catalog_len,
            autoflush=self._bulk_depth == 0,
        )
        self._catalogs.append(cat)
        return cat

    # ------------------------------------------------------------ read

    def __len__(self) -> int:
        """Total records, including ones marked deleted."""
        return sum(cat.count for cat in self._catalogs)

    @property
    def active_count(self) -> int:
        """Records not marked for deletion."""
        return len(self) - len(self.deleted_indexes & set(self.indexes(include_deleted=True)))

    def indexes(self, include_deleted: bool = False) -> list[int]:
        """All record indexes, optionally excluding deletions."""
        out: list[int] = []
        for cat in self._catalogs:
            out.extend(range(cat.start_index, cat.start_index + cat.count))
        if not include_deleted:
            out = [i for i in out if i not in self.deleted_indexes]
        return out

    def _catalog_for(self, index: int) -> Catalog:
        for cat in self._catalogs:
            if cat.start_index <= index < cat.start_index + cat.count:
                return cat
        raise RecordNotFoundError(index)

    def read_fields(self, index: int) -> dict[str, Any]:
        """Raw record fields (no image load)."""
        return self._catalog_for(index).read(index)

    def load_image(self, index: int) -> np.ndarray:
        """Load the camera frame for a record."""
        fields = self.read_fields(index)
        ref = fields["cam/image_array"]
        path = self.images_dir / ref
        if not path.exists():
            raise TubError(f"missing image file {ref} for record {index}")
        return np.load(path, allow_pickle=False)

    def read_record(self, index: int) -> DriveRecord:
        """Full typed record, image included."""
        fields = self.read_fields(index)
        return DriveRecord.from_fields(fields, self.load_image(index))

    def __iter__(self) -> Iterator[DriveRecord]:
        """Iterate non-deleted records in index order."""
        for index in self.indexes():
            yield self.read_record(index)

    def iter_fields(self, include_deleted: bool = False) -> Iterator[dict[str, Any]]:
        """Iterate raw fields (fast path: no image IO)."""
        deleted = self.deleted_indexes
        for cat in self._catalogs:
            for fields in cat:
                if include_deleted or fields["_index"] not in deleted:
                    yield fields

    # -------------------------------------------------------- deletion

    def mark_deleted(self, indexes: int | list[int] | range) -> None:
        """Mark records for deletion (reversible until vacuum)."""
        if isinstance(indexes, int):
            indexes = [indexes]
        valid = set(self.indexes(include_deleted=True))
        bad = [i for i in indexes if i not in valid]
        if bad:
            raise RecordNotFoundError(bad[0])
        self.deleted_indexes.update(int(i) for i in indexes)
        if self._bulk_depth == 0:
            self.flush()

    def restore(self, indexes: int | list[int] | range) -> None:
        """Un-mark records previously marked for deletion."""
        if isinstance(indexes, int):
            indexes = [indexes]
        self.deleted_indexes.difference_update(int(i) for i in indexes)
        if self._bulk_depth == 0:
            self.flush()

    def vacuum(self) -> int:
        """Physically remove deleted records' images; returns count.

        Catalog lines are kept (DonkeyCar behaviour: the manifest's
        ``deleted_indexes`` is authoritative); only image payloads are
        reclaimed.
        """
        removed = 0
        for index in sorted(self.deleted_indexes):
            try:
                fields = self.read_fields(index)
            except RecordNotFoundError:
                continue
            path = self.images_dir / fields["cam/image_array"]
            if path.exists():
                path.unlink()
                removed += 1
        self.flush()
        return removed

    # ------------------------------------------------------------ misc

    def size_bytes(self) -> int:
        """Total on-disk footprint of the tub directory."""
        return sum(p.stat().st_size for p in self.path.rglob("*") if p.is_file())

    def clone_to(self, dest: str | Path) -> "Tub":
        """Copy the whole tub directory (local rsync equivalent)."""
        dest = Path(dest)
        if dest.exists():
            raise TubError(f"destination already exists: {dest}")
        self.flush()
        shutil.copytree(self.path, dest)
        return Tub(dest)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tub({str(self.path)!r}, records={len(self)}, "
            f"deleted={len(self.deleted_indexes)})"
        )


class _BulkWriter:
    """Defers per-record flushes inside a ``with tub.bulk():`` block."""

    def __init__(self, tub: Tub) -> None:
        self._tub = tub

    def __enter__(self) -> Tub:
        self._tub._bulk_depth += 1
        for cat in self._tub._catalogs:
            cat.autoflush = False
        return self._tub

    def __exit__(self, *exc: Any) -> None:
        self._tub._bulk_depth -= 1
        if self._tub._bulk_depth == 0:
            for cat in self._tub._catalogs:
                cat.autoflush = True
            self._tub.flush()
