"""Dataset views over tubs: arrays, splits, batches, augmentation.

The training stage ("the student copies the training data using rsync
command and can begin the training process", §3.3) consumes tubs as
numpy arrays.  This module provides the loader used by every model in
:mod:`repro.ml.models`, including the sequence windows needed by the
memory/3D/RNN models, plus DonkeyCar's 15-way steering binning used by
the categorical model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.common.errors import DataError
from repro.common.rng import ensure_rng
from repro.data.tub import Tub

__all__ = [
    "TubDataset",
    "ArraySplit",
    "images_to_float",
    "linear_bin",
    "linear_unbin",
    "augment_flip",
    "augment_brightness",
    "N_STEERING_BINS",
]

#: DonkeyCar's categorical head discretises steering into 15 bins.
N_STEERING_BINS = 15


def images_to_float(images: np.ndarray) -> np.ndarray:
    """uint8 HxWx3 frames -> float32 in [0, 1] (Keras-style scaling)."""
    if images.dtype != np.uint8:
        raise DataError(f"expected uint8 images, got {images.dtype}")
    return images.astype(np.float32) / 255.0


def linear_bin(values: np.ndarray, n_bins: int = N_STEERING_BINS) -> np.ndarray:
    """One-hot bin values in [-1, 1] into ``n_bins`` classes.

    Reproduces DonkeyCar's ``linear_bin``: bin k covers the value
    ``-1 + 2k/(n-1)`` with nearest-neighbour assignment.
    """
    vals = np.clip(np.asarray(values, dtype=np.float64), -1.0, 1.0)
    idx = np.round((vals + 1.0) / 2.0 * (n_bins - 1)).astype(np.int64)
    out = np.zeros((len(idx), n_bins), dtype=np.float32)
    out[np.arange(len(idx)), idx] = 1.0
    return out


def linear_unbin(onehot: np.ndarray, n_bins: int = N_STEERING_BINS) -> np.ndarray:
    """Inverse of :func:`linear_bin` (argmax to bin centre)."""
    arr = np.asarray(onehot, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != n_bins:
        raise DataError(f"expected (N, {n_bins}) array, got {arr.shape}")
    idx = arr.argmax(axis=1)
    return -1.0 + 2.0 * idx / (n_bins - 1)


def augment_flip(
    images: np.ndarray, angles: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Horizontal flip with steering negation (classic lane augmentation)."""
    return images[:, :, ::-1].copy(), -np.asarray(angles)


def augment_brightness(
    images: np.ndarray,
    rng: int | np.random.Generator | None = None,
    low: float = 0.7,
    high: float = 1.3,
) -> np.ndarray:
    """Random per-frame brightness scaling (uint8 in, uint8 out)."""
    gen = ensure_rng(rng)
    gains = gen.uniform(low, high, size=(len(images), 1, 1, 1)).astype(np.float32)
    return np.clip(images.astype(np.float32) * gains, 0, 255).astype(np.uint8)


@dataclass
class ArraySplit:
    """Train/validation arrays produced by :meth:`TubDataset.split`."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_val: np.ndarray
    y_val: np.ndarray


class TubDataset:
    """Array view over one or more tubs (deleted records excluded).

    Images are loaded once into a contiguous uint8 block (a 20K-record
    tub at 120x160x3 is ~1.1 GB as float32 but only ~280 MB as uint8 —
    we keep uint8 and convert per batch, the standard trick for fitting
    DonkeyCar datasets in small-GPU memory).
    """

    def __init__(self, tubs: Tub | list[Tub]) -> None:
        self.tubs = [tubs] if isinstance(tubs, Tub) else list(tubs)
        if not self.tubs:
            raise DataError("need at least one tub")
        self._images: np.ndarray | None = None
        self._angles: np.ndarray | None = None
        self._throttles: np.ndarray | None = None

    # ---------------------------------------------------------- loading

    def load_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(images uint8 (N,H,W,3), angles (N,), throttles (N,))."""
        if self._images is None:
            images, angles, throttles = [], [], []
            for tub in self.tubs:
                for index in tub.indexes():
                    fields = tub.read_fields(index)
                    images.append(tub.load_image(index))
                    angles.append(float(fields["user/angle"]))
                    throttles.append(float(fields["user/throttle"]))
            if not images:
                raise DataError("dataset is empty (all records deleted?)")
            self._images = np.stack(images)
            self._angles = np.asarray(angles, dtype=np.float32)
            self._throttles = np.asarray(throttles, dtype=np.float32)
        return self._images, self._angles, self._throttles

    def __len__(self) -> int:
        return sum(len(tub.indexes()) for tub in self.tubs)

    # ----------------------------------------------------------- splits

    def split(
        self,
        val_fraction: float = 0.2,
        rng: int | np.random.Generator | None = None,
        targets: str = "both",
        sequence_length: int = 0,
        flip_augment: bool = False,
    ) -> ArraySplit:
        """Shuffled train/val split as float32 arrays.

        ``targets`` selects the label layout: ``"both"`` gives
        ``(N, 2)`` [angle, throttle]; ``"angle"`` / ``"throttle"`` give
        ``(N, 1)``; ``"categorical"`` gives the one-hot steering bins
        plus a throttle column appended (the categorical model's
        two-head layout is handled model-side).

        ``sequence_length > 0`` returns rolling windows
        ``(N, T, H, W, 3)`` for the memory/3D/RNN models; labels are
        taken at the window's last frame, and windows never span tub
        boundaries.

        ``flip_augment`` doubles the data with horizontally mirrored
        frames and negated steering (the standard lane-symmetric
        augmentation; applied before the train/val split so both sides
        stay balanced).
        """
        if not 0.0 < val_fraction < 1.0:
            raise DataError(f"val_fraction must be in (0, 1), got {val_fraction}")
        images, angles, throttles = self.load_arrays()
        x = images_to_float(images)
        if flip_augment:
            x = np.concatenate([x, x[:, :, ::-1]])
            angles = np.concatenate([angles, -angles])
            throttles = np.concatenate([throttles, throttles])
        if sequence_length > 0:
            if flip_augment:
                raise DataError(
                    "flip_augment is not supported with sequence windows"
                )
            x, keep = self._windows(x, sequence_length)
            angles = angles[keep]
            throttles = throttles[keep]

        if targets == "both":
            y = np.column_stack([angles, throttles]).astype(np.float32)
        elif targets == "angle":
            y = angles[:, None].astype(np.float32)
        elif targets == "throttle":
            y = throttles[:, None].astype(np.float32)
        elif targets == "categorical":
            y = np.column_stack(
                [linear_bin(angles), throttles[:, None]]
            ).astype(np.float32)
        else:
            raise DataError(f"unknown targets spec: {targets!r}")

        gen = ensure_rng(rng)
        order = gen.permutation(len(x))
        n_val = max(1, int(round(val_fraction * len(x))))
        val_idx, train_idx = order[:n_val], order[n_val:]
        if len(train_idx) == 0:
            raise DataError("split left no training samples")
        return ArraySplit(
            x_train=x[train_idx],
            y_train=y[train_idx],
            x_val=x[val_idx],
            y_val=y[val_idx],
        )

    def split_memory(
        self,
        mem_length: int = 3,
        val_fraction: float = 0.2,
        rng: int | np.random.Generator | None = None,
    ) -> ArraySplit:
        """Split for the memory model: x = (images, control history).

        For each record *t* (skipping the first ``mem_length`` of every
        tub), the history input is the ``(angle, throttle)`` commands of
        records ``t-mem_length .. t-1`` and the label is the command at
        ``t``.
        """
        if mem_length < 1:
            raise DataError(f"mem_length must be >= 1, got {mem_length}")
        images, angles, throttles = self.load_arrays()
        controls = np.column_stack([angles, throttles]).astype(np.float32)
        counts = [len(tub.indexes()) for tub in self.tubs]
        keep, histories = [], []
        offset = 0
        for count in counts:
            for t in range(offset + mem_length, offset + count):
                keep.append(t)
                histories.append(controls[t - mem_length : t])
            offset += count
        if not keep:
            raise DataError(f"no tub has > {mem_length} records")
        keep_arr = np.asarray(keep, dtype=np.int64)
        x_img = images_to_float(images[keep_arr])
        x_hist = np.stack(histories)
        y = controls[keep_arr]

        gen = ensure_rng(rng)
        order = gen.permutation(len(keep_arr))
        n_val = max(1, int(round(val_fraction * len(order))))
        val_idx, train_idx = order[:n_val], order[n_val:]
        if len(train_idx) == 0:
            raise DataError("split left no training samples")
        return ArraySplit(
            x_train=(x_img[train_idx], x_hist[train_idx]),
            y_train=y[train_idx],
            x_val=(x_img[val_idx], x_hist[val_idx]),
            y_val=y[val_idx],
        )

    def _windows(
        self, x: np.ndarray, seq_len: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Rolling windows per tub; returns (windows, kept label idx)."""
        if seq_len < 2:
            raise DataError(f"sequence_length must be >= 2, got {seq_len}")
        counts = [len(tub.indexes()) for tub in self.tubs]
        windows, keep = [], []
        offset = 0
        for count in counts:
            block = x[offset : offset + count]
            if count >= seq_len:
                # stride-tricks rolling window over the time axis (view,
                # then one copy into the output stack).
                view = np.lib.stride_tricks.sliding_window_view(
                    block, seq_len, axis=0
                )  # (count-T+1, H, W, 3, T)
                windows.append(np.moveaxis(view, -1, 1))
                keep.extend(range(offset + seq_len - 1, offset + count))
            offset += count
        if not windows:
            raise DataError(
                f"no tub has >= {seq_len} records; cannot build sequences"
            )
        return np.concatenate(windows), np.asarray(keep, dtype=np.int64)

    # ---------------------------------------------------------- batches

    @staticmethod
    def batches(
        x,
        y: np.ndarray,
        batch_size: int,
        rng: int | np.random.Generator | None = None,
        shuffle: bool = True,
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield mini-batches (one epoch).

        ``x`` may be a single array or a tuple of aligned arrays (the
        memory model's ``(images, history)`` layout); tuples are sliced
        element-wise.
        """
        if batch_size <= 0:
            raise DataError(f"batch_size must be positive, got {batch_size}")
        parts = x if isinstance(x, (tuple, list)) else (x,)
        n = len(parts[0])
        if any(len(p) != n for p in parts) or len(y) != n:
            raise DataError("x parts and y must have equal length")
        order = ensure_rng(rng).permutation(n) if shuffle else np.arange(n)
        for lo in range(0, n, batch_size):
            sel = order[lo : lo + batch_size]
            batch = tuple(p[sel] for p in parts)
            yield (batch if isinstance(x, (tuple, list)) else batch[0]), y[sel]

    # ------------------------------------------------------- statistics

    def statistics(self) -> dict[str, float]:
        """Summary statistics used by the F2/F3 benchmarks."""
        _, angles, throttles = self.load_arrays()
        return {
            "records": float(len(angles)),
            "angle_mean": float(angles.mean()),
            "angle_std": float(angles.std()),
            "throttle_mean": float(throttles.mean()),
            "throttle_std": float(throttles.std()),
        }
