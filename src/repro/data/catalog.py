"""DonkeyCar tub-v2 catalog files.

"Each of the existing datasets contains 10-50K records, records that
consist of .catalog files, images directory, and manifest files.
.Catalog files consist of steering and throttle values that were
recorded while driving.  Each of these corresponds to an image in the
images directory based on their id number.  Catalog_manifest files
store information about each catalog file and the manifest json file is
where certain records are marked for deletion." — paper §3.3.

This module implements exactly that on-disk layout:

* ``catalog_<k>.catalog`` — newline-delimited JSON, one record per line.
* ``catalog_<k>.catalog_manifest`` — JSON with the catalog path, the
  byte length of every line (DonkeyCar uses these for seek-free random
  access and as a corruption check), and the global start index.
* The tub-level ``manifest.json`` (written by :mod:`repro.data.tub`)
  lists catalogs and carries ``deleted_indexes``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

from repro.common.errors import CorruptCatalogError

__all__ = ["Catalog", "DEFAULT_MAX_LEN"]

#: DonkeyCar default: a new catalog file every 1000 records.
DEFAULT_MAX_LEN = 1000


class Catalog:
    """One ``.catalog`` file plus its ``.catalog_manifest`` sidecar."""

    def __init__(
        self,
        path: Path,
        start_index: int,
        max_len: int = DEFAULT_MAX_LEN,
        autoflush: bool = True,
    ):
        if max_len <= 0:
            raise ValueError(f"max_len must be positive, got {max_len}")
        self.path = Path(path)
        self.manifest_path = self.path.with_suffix(".catalog_manifest")
        self.start_index = int(start_index)
        self.max_len = int(max_len)
        self.autoflush = bool(autoflush)
        self.line_lengths: list[int] = []
        self._dirty = False
        if self.path.exists():
            self._load()
        else:
            self.path.touch()
            self._write_manifest()

    # -------------------------------------------------------------- io

    def _write_manifest(self) -> None:
        payload = {
            "path": self.path.name,
            "line_lengths": self.line_lengths,
            "start_index": self.start_index,
            "max_len": self.max_len,
        }
        self.manifest_path.write_text(json.dumps(payload))
        self._dirty = False

    def flush(self) -> None:
        """Write the catalog_manifest sidecar if it is stale."""
        if self._dirty:
            self._write_manifest()

    def _load(self) -> None:
        if not self.manifest_path.exists():
            raise CorruptCatalogError(
                f"catalog {self.path} has no catalog_manifest sidecar"
            )
        try:
            meta = json.loads(self.manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise CorruptCatalogError(
                f"unparseable catalog_manifest: {self.manifest_path}"
            ) from exc
        self.line_lengths = [int(n) for n in meta["line_lengths"]]
        self.start_index = int(meta["start_index"])
        self.max_len = int(meta.get("max_len", DEFAULT_MAX_LEN))
        actual = self.path.stat().st_size
        expected = sum(self.line_lengths)
        if actual != expected:
            raise CorruptCatalogError(
                f"catalog {self.path.name}: size {actual} != manifest total "
                f"{expected} (truncated or corrupted write)"
            )

    # ----------------------------------------------------------- write

    @property
    def count(self) -> int:
        """Number of records in this catalog."""
        return len(self.line_lengths)

    @property
    def is_full(self) -> bool:
        """Whether the catalog reached ``max_len`` records."""
        return self.count >= self.max_len

    def append(self, fields: dict[str, Any]) -> int:
        """Append one record; returns its global index."""
        if self.is_full:
            raise CorruptCatalogError(
                f"catalog {self.path.name} is full ({self.max_len} records)"
            )
        index = self.start_index + self.count
        record = {"_index": index, **fields}
        line = json.dumps(record, separators=(",", ":")) + "\n"
        data = line.encode("utf-8")
        with self.path.open("ab") as fh:
            fh.write(data)
        self.line_lengths.append(len(data))
        self._dirty = True
        if self.autoflush or self.is_full:
            self._write_manifest()
        return index

    # ------------------------------------------------------------ read

    def read(self, index: int) -> dict[str, Any]:
        """Read one record by *global* index via manifest byte offsets."""
        local = index - self.start_index
        if not 0 <= local < self.count:
            raise CorruptCatalogError(
                f"index {index} outside catalog "
                f"[{self.start_index}, {self.start_index + self.count})"
            )
        offset = sum(self.line_lengths[:local])
        with self.path.open("rb") as fh:
            fh.seek(offset)
            data = fh.read(self.line_lengths[local])
        try:
            record = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CorruptCatalogError(
                f"corrupt record at index {index} in {self.path.name}"
            ) from exc
        if record.get("_index") != index:
            raise CorruptCatalogError(
                f"index mismatch in {self.path.name}: wanted {index}, "
                f"stored {record.get('_index')}"
            )
        return record

    def __iter__(self) -> Iterator[dict[str, Any]]:
        """Iterate records in order (streaming, no offset table walk)."""
        with self.path.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh):
                try:
                    yield json.loads(line)
                except json.JSONDecodeError as exc:
                    raise CorruptCatalogError(
                        f"corrupt line {lineno} in {self.path.name}"
                    ) from exc
