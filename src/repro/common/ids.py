"""Deterministic identifier generation.

Real Chameleon/Trovi assign UUIDs; a reproducible emulation needs ids
that are stable across runs.  :class:`IdFactory` hands out ids of the
form ``<prefix>-<counter>`` (e.g. ``lease-0007``), with one counter per
prefix, and can also mint content-addressed ids (hashes) for immutable
blobs such as images and model weights.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict

__all__ = ["IdFactory", "content_id"]


class IdFactory:
    """Per-prefix sequential id allocator.

    >>> ids = IdFactory()
    >>> ids.next("lease")
    'lease-0001'
    >>> ids.next("lease")
    'lease-0002'
    >>> ids.next("node")
    'node-0001'
    """

    def __init__(self, width: int = 4) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self._width = width
        self._counters: dict[str, int] = defaultdict(int)

    def next(self, prefix: str) -> str:
        """Allocate the next id for ``prefix``."""
        if not prefix or "-" in prefix:
            raise ValueError(f"prefix must be non-empty and dash-free: {prefix!r}")
        self._counters[prefix] += 1
        return f"{prefix}-{self._counters[prefix]:0{self._width}d}"

    def peek(self, prefix: str) -> int:
        """Number of ids already allocated for ``prefix``."""
        return self._counters[prefix]


def content_id(data: bytes, length: int = 12) -> str:
    """Content-addressed id: first ``length`` hex chars of SHA-256."""
    if length < 4 or length > 64:
        raise ValueError(f"length must be in [4, 64], got {length}")
    return hashlib.sha256(data).hexdigest()[:length]
