"""Unit conversions and physical constants.

The paper mixes units freely — track dimensions in inches (inner line
330 in, outer line 509 in, average width 27.59 in), car speeds in m/s,
network rates in Mbit/s, GPU throughput in TFLOP/s.  Everything inside
:mod:`repro` is SI (metres, seconds, bytes, FLOPs); these helpers live
at the boundaries.
"""

from __future__ import annotations

__all__ = [
    "INCH_M",
    "MM_M",
    "inches_to_m",
    "m_to_inches",
    "mbit_to_bytes",
    "bytes_to_mbit",
    "tflops",
    "ms",
    "DONKEYCAR_IMAGE_HEIGHT",
    "DONKEYCAR_IMAGE_WIDTH",
    "DONKEYCAR_IMAGE_CHANNELS",
    "DONKEYCAR_LOOP_HZ",
]

INCH_M = 0.0254
"""Metres per inch."""

MM_M = 0.001
"""Metres per millimetre."""

#: DonkeyCar's default camera frame (height, width, depth) = 120x160x3.
DONKEYCAR_IMAGE_HEIGHT = 120
DONKEYCAR_IMAGE_WIDTH = 160
DONKEYCAR_IMAGE_CHANNELS = 3

#: DonkeyCar's default drive-loop rate in Hz.
DONKEYCAR_LOOP_HZ = 20.0


def inches_to_m(inches: float) -> float:
    """Convert inches to metres."""
    return float(inches) * INCH_M


def m_to_inches(metres: float) -> float:
    """Convert metres to inches."""
    return float(metres) / INCH_M


def mbit_to_bytes(mbit: float) -> float:
    """Convert megabits to bytes (1 Mbit = 125 000 bytes)."""
    return float(mbit) * 125_000.0


def bytes_to_mbit(nbytes: float) -> float:
    """Convert bytes to megabits."""
    return float(nbytes) / 125_000.0


def tflops(value: float) -> float:
    """Convert TFLOP/s to FLOP/s."""
    return float(value) * 1e12


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return float(value) * 1e-3
