"""Shared infrastructure: errors, simulated time, RNG plumbing, ids, units."""

from repro.common.clock import Clock, EventScheduler, ScheduledEvent
from repro.common.eventlog import Event, EventLog
from repro.common.ids import IdFactory, content_id
from repro.common.rng import DEFAULT_SEED, ensure_rng, seed_from_name, spawn
from repro.common import errors, units

__all__ = [
    "Clock",
    "EventScheduler",
    "ScheduledEvent",
    "Event",
    "EventLog",
    "IdFactory",
    "content_id",
    "DEFAULT_SEED",
    "ensure_rng",
    "seed_from_name",
    "spawn",
    "errors",
    "units",
]
