"""Exception hierarchy shared across the AutoLearn reproduction.

Every subsystem raises subclasses of :class:`ReproError` so that callers
can catch library failures without accidentally swallowing programming
errors (``TypeError``, ``ValueError`` from numpy, ...).  The hierarchy
mirrors the subsystem layout: testbed errors, edge errors, data errors,
and so on.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ClockError",
    # data
    "DataError",
    "TubError",
    "CorruptCatalogError",
    "RecordNotFoundError",
    # ml
    "MLError",
    "ShapeError",
    "NotFittedError",
    "SerializationError",
    "PlanError",
    # testbed / edge
    "TestbedError",
    "AuthenticationError",
    "QuotaExceededError",
    "ReservationConflictError",
    "LeaseError",
    "ProvisioningError",
    "NoSuchResourceError",
    "EdgeError",
    "DeviceNotEnrolledError",
    "PolicyViolationError",
    "ContainerError",
    # faults / resilience
    "FaultError",
    "InjectedFaultError",
    "CircuitOpenError",
    "RetryExhaustedError",
    # net / store / artifacts
    "NetworkError",
    "TransferError",
    "UnreachableHostError",
    "LinkPartitionError",
    "ObjectStoreError",
    "NoSuchContainerError",
    "NoSuchObjectError",
    "TransientStoreError",
    "ContainerQuotaError",
    "ArtifactError",
    "VersionNotFoundError",
    "TagNotFoundError",
    # vehicle / sim
    "VehicleError",
    "PartError",
    "SimulationError",
    "TrackError",
    "OffTrackError",
    # serve
    "ServeError",
    "ReplicaStateError",
    # fleet
    "FleetError",
    "RolloutError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An object was configured with inconsistent or invalid parameters."""


class ClockError(ReproError):
    """Simulated-time violation (e.g. scheduling an event in the past)."""


# ---------------------------------------------------------------- data


class DataError(ReproError):
    """Base class for dataset / tub storage failures."""


class TubError(DataError):
    """Structural problem with a tub (missing parts, bad layout)."""


class CorruptCatalogError(TubError):
    """A ``.catalog`` file failed to parse or failed its checksum."""


class RecordNotFoundError(DataError, KeyError):
    """Lookup of a record index that does not exist in the tub."""


# ------------------------------------------------------------------ ml


class MLError(ReproError):
    """Base class for the numpy NN framework."""


class ShapeError(MLError):
    """Tensor shape mismatch between layers, targets, or inputs."""


class NotFittedError(MLError):
    """A model method requiring trained weights was called before fit."""


class SerializationError(MLError):
    """Model weights could not be saved or loaded."""


class PlanError(MLError):
    """A network could not be compiled to (or run as) an execution plan."""


# ------------------------------------------------------------- testbed


class TestbedError(ReproError):
    """Base class for the Chameleon testbed emulation."""


class AuthenticationError(TestbedError):
    """Federated-identity login failed or session expired."""


class QuotaExceededError(TestbedError):
    """The project's allocation cannot cover the requested lease."""


class ReservationConflictError(TestbedError):
    """An advance reservation overlaps an existing lease on a node."""


class LeaseError(TestbedError):
    """Invalid lease lifecycle transition (e.g. using an expired lease)."""


class ProvisioningError(TestbedError):
    """Bare-metal provisioning or image deployment failed."""


class NoSuchResourceError(TestbedError, KeyError):
    """Unknown node, site, image, or lease identifier."""


# ---------------------------------------------------------------- edge


class EdgeError(ReproError):
    """Base class for the CHI@Edge emulation."""


class DeviceNotEnrolledError(EdgeError):
    """Operation on a device that has not completed BYOD enrollment."""


class PolicyViolationError(EdgeError):
    """Whitelist access policy denied the request."""


class ContainerError(EdgeError):
    """Container lifecycle failure on an edge device."""


# -------------------------------------------------- faults / resilience


class FaultError(ReproError):
    """Base class for the fault-injection and resilience layer."""


class InjectedFaultError(FaultError):
    """An injected fault fired against the calling operation.

    This is the *retryable* class: resilience wrappers treat it (and its
    subsystem-specific subclasses) as transient and eligible for backoff.
    """


class CircuitOpenError(FaultError):
    """A per-target circuit breaker is open; the call was refused fast."""


class RetryExhaustedError(FaultError):
    """A retry policy ran out of attempts (or deadline) without success."""


# ----------------------------------------------------------------- net


class NetworkError(ReproError):
    """Base class for the network emulation."""


class TransferError(NetworkError):
    """A file transfer (rsync/scp emulation) failed mid-flight."""


class UnreachableHostError(NetworkError):
    """No path between the requested endpoints in the topology."""


class LinkPartitionError(TransferError, InjectedFaultError):
    """An injected network partition covers the route of this transfer."""


# --------------------------------------------------------------- store


class ObjectStoreError(ReproError):
    """Base class for the Swift-like object store."""


class NoSuchContainerError(ObjectStoreError, KeyError):
    """Container name not present in the store."""


class NoSuchObjectError(ObjectStoreError, KeyError):
    """Object name not present in the container."""


class TransientStoreError(ObjectStoreError, InjectedFaultError):
    """An injected transient object-store failure (retryable)."""


class ContainerQuotaError(ObjectStoreError):
    """A ``put`` would push a container past its byte quota."""


# ----------------------------------------------------------- artifacts


class ArtifactError(ReproError):
    """Base class for the Trovi artifact hub emulation."""


class VersionNotFoundError(ArtifactError, KeyError):
    """Requested artifact version does not exist."""


class TagNotFoundError(ArtifactError, KeyError):
    """Requested version tag is not bound on the artifact."""


# ------------------------------------------------------- vehicle / sim


class VehicleError(ReproError):
    """Base class for the DonkeyCar-style vehicle framework."""


class PartError(VehicleError):
    """A part failed to run, or its inputs/outputs are mis-wired."""


class SimulationError(ReproError):
    """Base class for the driving simulator."""


class TrackError(SimulationError):
    """Invalid track geometry."""


class OffTrackError(SimulationError):
    """The car left the drivable surface (crash) during a strict run."""


# --------------------------------------------------------------- serve


class ServeError(ReproError):
    """Base class for the fleet inference-serving subsystem."""


class ReplicaStateError(ServeError):
    """Invalid replica lifecycle transition (e.g. dispatching a batch to a
    replica that is still provisioning or already retired)."""


# --------------------------------------------------------------- fleet


class FleetError(ReproError):
    """Base class for the continuous-learning fleet control plane."""


class RolloutError(FleetError):
    """Invalid rollout lifecycle transition (e.g. promoting past a stage
    that was never entered, or rolling back with no prior stable)."""
