"""Append-only event log with typed events and simple querying.

Trovi's impact metrics (views, launch clicks, executions — §5 of the
paper) are *derived* quantities over a raw interaction log; the testbed
and edge emulations likewise emit lifecycle events.  :class:`EventLog`
is the shared substrate: an append-only sequence of :class:`Event`
records that can be filtered, counted, and grouped without mutating the
underlying history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True)
class Event:
    """A single immutable log entry.

    Attributes
    ----------
    time:
        Simulated timestamp (seconds).
    kind:
        Event type tag, e.g. ``"artifact.launch"`` or ``"lease.start"``.
    subject:
        The entity the event is about (artifact id, node id, ...).
    actor:
        Who caused it (user id, daemon id), or ``""`` for system events.
    payload:
        Arbitrary extra fields.
    """

    time: float
    kind: str
    subject: str
    actor: str = ""
    payload: dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only store of :class:`Event` records.

    Events must be appended in non-decreasing time order (the emulation
    is single-threaded over a simulated clock, so this is natural) —
    enforcement catches accidentally unsorted replay files.
    """

    def __init__(self) -> None:
        self._events: list[Event] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def append(
        self,
        time: float,
        kind: str,
        subject: str,
        actor: str = "",
        **payload: Any,
    ) -> Event:
        """Append a new event and return it."""
        if self._events and time < self._events[-1].time:
            raise ValueError(
                f"events must be appended in time order: "
                f"last={self._events[-1].time}, new={time}"
            )
        event = Event(float(time), kind, subject, actor, dict(payload))
        self._events.append(event)
        return event

    # ------------------------------------------------------------ query

    def filter(
        self,
        kind: str | None = None,
        subject: str | None = None,
        actor: str | None = None,
        since: float | None = None,
        until: float | None = None,
        predicate: Callable[[Event], bool] | None = None,
    ) -> list[Event]:
        """Return events matching every given criterion."""
        out = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if subject is not None and event.subject != subject:
                continue
            if actor is not None and event.actor != actor:
                continue
            if since is not None and event.time < since:
                continue
            if until is not None and event.time > until:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def count(self, **kwargs: Any) -> int:
        """Number of events matching :meth:`filter` criteria."""
        return len(self.filter(**kwargs))

    def distinct_actors(self, kind: str | None = None) -> set[str]:
        """Set of distinct non-empty actors (optionally for one kind)."""
        return {
            event.actor
            for event in self.filter(kind=kind)
            if event.actor
        }

    def group_by_kind(self) -> dict[str, int]:
        """Histogram of event kinds."""
        hist: dict[str, int] = {}
        for event in self._events:
            hist[event.kind] = hist.get(event.kind, 0) + 1
        return hist

    def last(self, kind: str | None = None) -> Event | None:
        """Most recent event (optionally of a given kind)."""
        if kind is None:
            return self._events[-1] if self._events else None
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None
