"""Deterministic random-number plumbing.

Every stochastic component in the reproduction accepts either an
integer seed, a :class:`numpy.random.Generator`, or ``None`` (meaning
"derive from the global default seed").  :func:`ensure_rng` normalises
those three spellings, and :func:`spawn` derives independent child
streams so that adding randomness to one subsystem never perturbs
another (the classic reproducibility trap in simulation codebases).
"""

from __future__ import annotations

import numpy as np

__all__ = ["DEFAULT_SEED", "ensure_rng", "spawn", "seed_from_name"]

DEFAULT_SEED = 20231112  # SC-W 2023 started November 12, 2023.

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed spelling.

    Passing a Generator returns it unchanged (shared stream); passing an
    int builds a fresh PCG64 stream; ``None`` uses :data:`DEFAULT_SEED`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]


def seed_from_name(name: str, base: int = DEFAULT_SEED) -> int:
    """Stable 63-bit seed derived from a string label.

    Used to give named entities (tracks, devices, models) their own
    reproducible stream regardless of creation order.
    """
    # FNV-1a over the UTF-8 bytes, folded with the base seed.
    acc = 0xCBF29CE484222325 ^ (base & 0xFFFFFFFFFFFFFFFF)
    for byte in name.encode("utf-8"):
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc & 0x7FFFFFFFFFFFFFFF
