"""Simulated time for the testbed, edge, and network emulations.

The paper's system runs against wall-clock time (lease start dates,
container boot times, transfer durations).  For a deterministic
reproduction everything runs on a :class:`Clock` — a monotonically
advancing simulated timestamp — plus a discrete-event scheduler
(:class:`EventScheduler`) that every subsystem (testbed leases, edge
daemons, net transfers, serve batching, faults, fleet) shares.

No component in :mod:`repro` reads the real wall clock.

Scale notes
-----------
The scheduler is sized for millions of events over 100k entities while
keeping the original observable contract (timestamp order, FIFO within
an instant via ``(time, seq)``, overdue events firing at the current
time):

* The heap stores ``(time, seq, event)`` tuples so sift comparisons run
  at C speed instead of calling a Python ``__lt__``.
* ``pending`` is O(1): a live counter is maintained on schedule /
  cancel / fire instead of scanning the heap.
* Cancellation is tombstone-free at scale: cancelled entries are
  counted, and once tombstones outnumber live events (past a small
  floor) the heap is compacted in one O(n) pass — a cancel-heavy
  workload (serve's batcher wake events) can no longer rot the heap
  until the tombstones' due times.
* ``run_until`` drains all same-instant events with a single clock
  adjustment, and the dispatch loop has a no-hook fast path; an
  optional fire hook (:meth:`EventScheduler.set_fire_hook`) lets obs
  trace event delivery without taxing untraced runs.

An automatic fired-event freelist was considered and rejected:
cancellation handles escape to consumers (serve keeps wake/in-flight
events in maps and may cancel them after they fire), so silently
recycling a fired event would alias a live handle and let a stale
``cancel()`` kill an unrelated event.  Instead, reuse is explicit:
:meth:`EventScheduler.reschedule` moves (or revives) an event the
*caller* hands back — the rotate-a-watchdog pattern (serve's batcher
wakes, deadline timers) then runs without allocating a new event or
closure per rotation.  Incarnations are distinguished by ``seq``, so a
superseded heap entry is just another tombstone.  Remaining allocation
churn is cut by ``__slots__`` on :class:`ScheduledEvent` and the
tuple-based heap.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.common.errors import ClockError

__all__ = ["Clock", "EventScheduler", "ScheduledEvent"]


class Clock:
    """A monotonically advancing simulated clock.

    Time is a float number of seconds since an arbitrary epoch (0.0).
    ``advance`` moves time forward; ``advance_to`` jumps to an absolute
    timestamp.  Moving backwards raises :class:`ClockError` — simulated
    time, like real time, only goes one way.

    >>> clock = Clock()
    >>> clock.advance(5.0)
    5.0
    >>> clock.now
    5.0
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start before the epoch: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ClockError(f"cannot advance by a negative duration: {seconds}")
        self._now += float(seconds)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute ``timestamp`` (must not be in the past)."""
        if timestamp < self._now:
            raise ClockError(
                f"cannot move clock backwards: now={self._now}, target={timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now:.3f})"


class ScheduledEvent:
    """An event queued on an :class:`EventScheduler`.

    Ordering is (time, sequence) so that events scheduled for the same
    instant fire in FIFO order.  ``cancel()`` marks the event so the
    scheduler skips it; cancelling an event that already fired (or was
    already cancelled) is a no-op.
    """

    __slots__ = ("time", "seq", "callback", "label", "cancelled", "_scheduler")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], Any],
        label: str = "",
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = cancelled
        self._scheduler: EventScheduler | None = None

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when due.

        Cancelling an event that already fired is a harmless no-op (the
        ``_scheduler`` backref doubles as the in-heap marker and is
        cleared when the event leaves the heap).
        """
        if self.cancelled:
            return
        self.cancelled = True
        scheduler = self._scheduler
        if scheduler is not None:
            # Inlined accounting (hot path): the entry left in the heap
            # becomes a tombstone; compact once tombstones dominate.
            scheduler._live -= 1
            scheduler._tombstones += 1
            if (
                scheduler._tombstones > scheduler._COMPACT_FLOOR
                and scheduler._tombstones > scheduler._live
            ):
                scheduler._compact()

    # (time, seq) ordering, mirroring the former dataclass(order=True).

    def _key(self) -> tuple[float, int]:
        return (self.time, self.seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScheduledEvent):
            return NotImplemented
        return self._key() == other._key()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "ScheduledEvent") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "ScheduledEvent") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "ScheduledEvent") -> bool:
        return self._key() >= other._key()

    __hash__ = None  # type: ignore[assignment]  # order=True dataclasses were unhashable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return (
            f"ScheduledEvent(time={self.time!r}, seq={self.seq}, "
            f"label={self.label!r}, {state})"
        )


class EventScheduler:
    """A discrete-event scheduler driving a shared :class:`Clock`.

    Events are callbacks scheduled at absolute simulated times.  Calling
    :meth:`run_until` advances the clock through every due event in
    timestamp order, firing callbacks as it goes.  Callbacks may
    schedule further events.

    The testbed lease manager uses this to expire leases; edge device
    daemons use it for heartbeats; the network layer for transfer
    completions; serve for batch wakes and completions.

    Failure contract: if a callback raises, the clock rests at the
    failing event's time, that event is consumed, every other queued
    event stays queued, and the exception propagates.  The final
    jump to ``run_until``'s target timestamp is skipped.
    """

    # Compact when tombstones outnumber live events, but never bother
    # below this floor — tiny heaps pay more in heapify than in scans.
    _COMPACT_FLOOR = 64

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock if clock is not None else Clock()
        # Heap of (time, seq, event): tuple comparison keeps sift
        # operations at C speed; seq is unique so the event object is
        # never compared.
        self._heap: list[tuple[float, int, ScheduledEvent]] = []
        self._seq = 0
        self._live = 0  # non-cancelled events currently in the heap
        self._tombstones = 0  # cancelled events still occupying heap slots
        self._fire_hook: Callable[[ScheduledEvent], None] | None = None

    def schedule_at(
        self, timestamp: float, callback: Callable[[], Any], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` at absolute simulated ``timestamp``."""
        now = self.clock._now
        if timestamp < now:
            raise ClockError(
                f"cannot schedule in the past: now={now}, at={timestamp}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = ScheduledEvent(float(timestamp), seq, callback, label)
        event._scheduler = self
        heapq.heappush(self._heap, (event.time, seq, event))
        self._live += 1
        return event

    def schedule_in(
        self, delay: float, callback: Callable[[], Any], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` after ``delay`` seconds from now."""
        if delay < 0:
            raise ClockError(f"negative delay: {delay}")
        return self.schedule_at(self.clock._now + delay, callback, label)

    def reschedule(
        self,
        event: ScheduledEvent | None,
        timestamp: float,
        callback: Callable[[], Any] | None = None,
        label: str = "",
    ) -> ScheduledEvent:
        """Move ``event`` to ``timestamp``, reusing the event object.

        The allocation-free rotation primitive: cancel-and-replace in
        one call.  ``event`` may be live (its old slot becomes a
        tombstone), already fired or cancelled (the object is revived),
        or ``None`` (a fresh event is scheduled — ``callback`` is then
        required).  The callback and label carry over unless overridden.
        Each incarnation takes a fresh ``seq``, so ordering is exactly
        what ``event.cancel()`` + ``schedule_at(...)`` would produce.
        """
        now = self.clock._now
        if timestamp < now:
            raise ClockError(
                f"cannot schedule in the past: now={now}, at={timestamp}"
            )
        if event is None:
            if callback is None:
                raise ClockError("reschedule of a fresh event needs a callback")
            return self.schedule_at(timestamp, callback, label)
        if event._scheduler is not None and event._scheduler is not self:
            raise ClockError("cannot reschedule an event owned by another scheduler")
        if event._scheduler is self:
            if event.cancelled:
                # Tombstone already counted by cancel(); revive it.
                event.cancelled = False
                self._live += 1
            else:
                # Live: the superseded heap entry becomes a tombstone.
                self._tombstones += 1
        else:
            # Fired (or never scheduled here): plain fresh schedule.
            event.cancelled = False
            event._scheduler = self
            self._live += 1
        if callback is not None:
            event.callback = callback
        if label:
            event.label = label
        seq = self._seq
        self._seq = seq + 1
        event.seq = seq
        event.time = float(timestamp)
        heapq.heappush(self._heap, (event.time, seq, event))
        if self._tombstones > self._COMPACT_FLOOR and self._tombstones > self._live:
            self._compact()
        return event

    def set_fire_hook(
        self, hook: Callable[[ScheduledEvent], None] | None
    ) -> None:
        """Install ``hook`` to observe every fired event (None to clear).

        The hook runs just before each callback.  With no hook installed
        the dispatch loop takes a branch-free fast path, so untraced
        runs pay nothing for the instrumentation point.
        """
        self._fire_hook = hook

    @property
    def pending(self) -> int:
        """Number of queued live (non-cancelled) events.  O(1)."""
        return self._live

    @property
    def heap_size(self) -> int:
        """Physical heap slots, live events plus tombstones.  O(1).

        Compaction keeps this within a constant factor of ``pending``;
        benchmarks and tests use it to pin peak memory behaviour.
        """
        return len(self._heap)

    def _compact(self) -> None:
        """Drop every tombstone in one O(n) in-place rebuild.

        Heapify over (time, seq) tuples is total-order stable: seq is
        unique, so live events keep their exact firing order.  The list
        is compacted *in place* (slice assignment, never rebound):
        cancellation can run inside a callback while ``_drain`` iterates
        an alias of the heap, and rebinding would leave the drain loop
        popping a stale list while fired events linger in the new one.
        """
        heap = self._heap
        live: list[tuple[float, int, ScheduledEvent]] = []
        for entry in heap:
            event = entry[2]
            if event.seq != entry[1]:
                continue  # superseded incarnation; the event lives on
            if event.cancelled:
                event._scheduler = None
            else:
                live.append(entry)
        heap[:] = live
        heapq.heapify(heap)
        self._tombstones = 0

    def next_event_time(self) -> float | None:
        """Timestamp of the next live event, or ``None`` if idle."""
        heap = self._heap
        while heap:
            time, seq, event = heap[0]
            if event.seq != seq:
                heapq.heappop(heap)
            elif event.cancelled:
                heapq.heappop(heap)
                event._scheduler = None
            else:
                return time
            self._tombstones -= 1
        return None

    def run_until(self, timestamp: float) -> int:
        """Fire every event due at or before ``timestamp``.

        The clock ends exactly at ``timestamp`` even if no event was due
        then.  Returns the number of callbacks fired.  All events at one
        instant are drained with a single clock adjustment.  If a
        callback raises, the clock stays at the failing event's time and
        the exception propagates (see the class failure contract).
        """
        if timestamp < self.clock.now:
            raise ClockError(
                f"cannot run into the past: now={self.clock.now}, until={timestamp}"
            )
        fired = self._drain(timestamp, None)
        self.clock.advance_to(timestamp)
        return fired

    def _drain(self, timestamp: float, max_events: int | None) -> int:
        """Pop and fire due events, up to ``max_events`` if given."""
        heap = self._heap
        clock = self.clock
        hook = self._fire_hook
        fired = 0
        while heap and heap[0][0] <= timestamp:
            if max_events is not None and fired >= max_events:
                break
            time, seq, event = heapq.heappop(heap)
            if event.seq != seq:
                self._tombstones -= 1  # superseded incarnation
                continue
            event._scheduler = None
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._live -= 1
            # One adjustment per instant: same-time successors skip it.
            # Overdue events (someone advanced the shared clock directly,
            # e.g. a blocking deploy) fire immediately at the current time.
            if time > clock._now:
                clock._now = time
            if hook is not None:
                hook(event)
            event.callback()
            fired += 1
        return fired

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Fire events until the queue drains (bounded by ``max_events``).

        The bound is enforced per event: exactly ``max_events`` callbacks
        fire before :class:`ClockError`, even when many events share one
        instant.
        """
        fired = 0
        while True:
            next_time = self.next_event_time()
            if next_time is None:
                return fired
            if fired >= max_events:
                raise ClockError(
                    f"scheduler did not drain after {max_events} events"
                )
            fired += self._drain(next_time, max_events - fired)
            self.clock.advance_to(max(next_time, self.clock.now))
