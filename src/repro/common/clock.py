"""Simulated time for the testbed, edge, and network emulations.

The paper's system runs against wall-clock time (lease start dates,
container boot times, transfer durations).  For a deterministic
reproduction everything runs on a :class:`Clock` — a monotonically
advancing simulated timestamp — plus a small discrete-event scheduler
(:class:`EventScheduler`) used by the testbed lease manager and the edge
device daemons.

No component in :mod:`repro` reads the real wall clock.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import ClockError

__all__ = ["Clock", "EventScheduler", "ScheduledEvent"]


class Clock:
    """A monotonically advancing simulated clock.

    Time is a float number of seconds since an arbitrary epoch (0.0).
    ``advance`` moves time forward; ``advance_to`` jumps to an absolute
    timestamp.  Moving backwards raises :class:`ClockError` — simulated
    time, like real time, only goes one way.

    >>> clock = Clock()
    >>> clock.advance(5.0)
    5.0
    >>> clock.now
    5.0
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start before the epoch: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ClockError(f"cannot advance by a negative duration: {seconds}")
        self._now += float(seconds)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute ``timestamp`` (must not be in the past)."""
        if timestamp < self._now:
            raise ClockError(
                f"cannot move clock backwards: now={self._now}, target={timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now:.3f})"


@dataclass(order=True)
class ScheduledEvent:
    """An event queued on an :class:`EventScheduler`.

    Ordering is (time, sequence) so that events scheduled for the same
    instant fire in FIFO order.
    """

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when due."""
        self.cancelled = True


class EventScheduler:
    """A discrete-event scheduler driving a shared :class:`Clock`.

    Events are callbacks scheduled at absolute simulated times.  Calling
    :meth:`run_until` advances the clock through every due event in
    timestamp order, firing callbacks as it goes.  Callbacks may
    schedule further events.

    The testbed lease manager uses this to expire leases; edge device
    daemons use it for heartbeats; the network layer for transfer
    completions.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._queue: list[ScheduledEvent] = []
        self._counter = itertools.count()

    def schedule_at(
        self, timestamp: float, callback: Callable[[], Any], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` at absolute simulated ``timestamp``."""
        if timestamp < self.clock.now:
            raise ClockError(
                f"cannot schedule in the past: now={self.clock.now}, at={timestamp}"
            )
        event = ScheduledEvent(float(timestamp), next(self._counter), callback, label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(
        self, delay: float, callback: Callable[[], Any], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` after ``delay`` seconds from now."""
        if delay < 0:
            raise ClockError(f"negative delay: {delay}")
        return self.schedule_at(self.clock.now + delay, callback, label)

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return sum(1 for event in self._queue if not event.cancelled)

    def next_event_time(self) -> float | None:
        """Timestamp of the next live event, or ``None`` if idle."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def run_until(self, timestamp: float) -> int:
        """Fire every event due at or before ``timestamp``.

        The clock ends exactly at ``timestamp`` even if no event was due
        then.  Returns the number of callbacks fired.
        """
        if timestamp < self.clock.now:
            raise ClockError(
                f"cannot run into the past: now={self.clock.now}, until={timestamp}"
            )
        fired = 0
        while self._queue and self._queue[0].time <= timestamp:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            # Overdue events (someone advanced the shared clock directly,
            # e.g. a blocking deploy) fire immediately at the current time.
            self.clock.advance_to(max(event.time, self.clock.now))
            event.callback()
            fired += 1
        self.clock.advance_to(timestamp)
        return fired

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Fire events until the queue drains (bounded by ``max_events``)."""
        fired = 0
        while fired < max_events:
            next_time = self.next_event_time()
            if next_time is None:
                return fired
            fired += self.run_until(next_time)
        raise ClockError(f"scheduler did not drain after {max_events} events")
