"""Promotion gates: the quality bar a rollout stage must clear.

A gate turns one stage's measured serving behaviour (SLO window + the
per-version driving-quality scoreboard) into a deterministic pass/fail
verdict with explicit reasons.  Thresholds combine classic serving SLOs
(tail latency, deadline attainment) with the driving metrics the paper
cares about: cross-track error (how far off the racing line the model's
steering would put the car) and the stale-command ratio of the closed
vehicle loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.fleet.stage import VersionStats

__all__ = ["GateThresholds", "GateDecision", "evaluate_gate"]


@dataclass(frozen=True)
class GateThresholds:
    """Pass/fail bounds for one promotion gate.

    ``max_cte_m`` is an absolute cross-track-error ceiling;
    ``max_cte_regression_m`` additionally bounds how much worse than the
    concurrently-measured stable version a candidate may drive.
    """

    min_completions: int = 20
    max_p95_ms: float = 80.0
    max_deadline_miss: float = 0.15
    max_stale_ratio: float = 0.45
    max_cte_m: float = 0.28
    max_cte_regression_m: float = 0.08

    def __post_init__(self) -> None:
        if self.min_completions < 1:
            raise ConfigurationError(
                f"min_completions must be >= 1, got {self.min_completions}"
            )
        if self.max_p95_ms <= 0 or self.max_cte_m <= 0:
            raise ConfigurationError(
                "max_p95_ms and max_cte_m must be positive"
            )
        if not 0.0 <= self.max_deadline_miss <= 1.0:
            raise ConfigurationError(
                f"max_deadline_miss must be in [0, 1], got {self.max_deadline_miss}"
            )
        if not 0.0 <= self.max_stale_ratio <= 1.0:
            raise ConfigurationError(
                f"max_stale_ratio must be in [0, 1], got {self.max_stale_ratio}"
            )


@dataclass(frozen=True)
class GateDecision:
    """One gate verdict: stage, version under test, and why it failed."""

    stage: str
    version: str
    passed: bool
    reasons: tuple[str, ...]

    def to_dict(self) -> dict:
        """JSON-ready view (round reports, golden summaries)."""
        return {
            "stage": self.stage,
            "version": self.version,
            "passed": self.passed,
            "reasons": list(self.reasons),
        }


def evaluate_gate(
    stage: str,
    candidate: VersionStats,
    baseline: VersionStats | None,
    stale_ratio: float,
    thresholds: GateThresholds,
) -> GateDecision:
    """Judge one stage's candidate measurements against the thresholds.

    Checks run in a fixed order so ``reasons`` is deterministic.  A
    candidate that served too few requests fails outright — a crashed
    canary must not pass a gate by silence.
    """
    reasons: list[str] = []
    if candidate.completed < thresholds.min_completions:
        reasons.append(
            f"completions {candidate.completed} < {thresholds.min_completions}"
        )
    else:
        if candidate.p95_ms > thresholds.max_p95_ms:
            reasons.append(
                f"p95 {candidate.p95_ms:.3f}ms > {thresholds.max_p95_ms:.3f}ms"
            )
        if candidate.deadline_miss_rate > thresholds.max_deadline_miss:
            reasons.append(
                f"deadline_miss {candidate.deadline_miss_rate:.4f} > "
                f"{thresholds.max_deadline_miss:.4f}"
            )
        if candidate.mean_cte_m > thresholds.max_cte_m:
            reasons.append(
                f"cte {candidate.mean_cte_m:.4f}m > {thresholds.max_cte_m:.4f}m"
            )
        if (
            baseline is not None
            and baseline.completed >= thresholds.min_completions
            and candidate.mean_cte_m
            > baseline.mean_cte_m + thresholds.max_cte_regression_m
        ):
            reasons.append(
                f"cte regression {candidate.mean_cte_m - baseline.mean_cte_m:.4f}m"
                f" > {thresholds.max_cte_regression_m:.4f}m vs stable"
            )
    if stale_ratio > thresholds.max_stale_ratio:
        reasons.append(
            f"stale_ratio {stale_ratio:.4f} > {thresholds.max_stale_ratio:.4f}"
        )
    return GateDecision(
        stage=stage,
        version=candidate.version,
        passed=not reasons,
        reasons=tuple(reasons),
    )
