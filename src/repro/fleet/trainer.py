"""The trainer loop: threshold-gated incremental retraining.

Cloud side of the continuum loop.  Each round the trainer wakes, checks
whether enough *fresh* cleaned records accumulated (data threshold),
and if so retrains the autopilot — warm-starting from the current
``stable`` checkpoint via :mod:`repro.ml.serialize`, so learning is
incremental rather than from scratch — on a sliding window of the most
recent cleaned shards.  Training cost is charged to the simulated clock
through the testbed GPU cost model (FLOPs / effective FLOPS), and the
new checkpoint is published to the registry with its validation loss
and held-out cross-track error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.clock import EventScheduler
from repro.common.errors import FleetError
from repro.common.rng import ensure_rng, seed_from_name
from repro.data.datasets import ArraySplit, images_to_float
from repro.fleet.dataplane import CLEAN_CONTAINER
from repro.fleet.registry import TAG_STABLE, ModelRegistry
from repro.fleet.shards import decode_shard
from repro.fleet.world import SyntheticTrackWorld
from repro.ml.models.factory import create_model
from repro.ml.optimizers import Adam
from repro.ml.training import Trainer, estimate_flops_per_sample
from repro.objectstore.store import ObjectStore
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer, Tracer
from repro.testbed.hardware import gpu_spec

__all__ = ["TrainReport", "IncrementalTrainer"]


@dataclass(frozen=True)
class TrainReport:
    """One completed training wake: the published candidate."""

    round_no: int
    version: int
    samples: int
    epochs: int
    val_loss: float
    eval_cte_m: float
    train_s: float
    warm_start: int  # version warm-started from, 0 = cold start
    published_at_s: float

    def to_dict(self) -> dict:
        """JSON-ready view."""
        return {
            "round_no": self.round_no,
            "version": self.version,
            "samples": self.samples,
            "epochs": self.epochs,
            "val_loss": self.val_loss,
            "eval_cte_m": self.eval_cte_m,
            "train_s": self.train_s,
            "warm_start": self.warm_start,
            "published_at_s": self.published_at_s,
        }


class IncrementalTrainer:
    """Retrains and publishes candidates when fresh data warrants it."""

    def __init__(
        self,
        store: ObjectStore,
        registry: ModelRegistry,
        world: SyntheticTrackWorld,
        scheduler: EventScheduler,
        model_name: str = "linear",
        model_scale: float = 0.25,
        epochs: int = 6,
        batch_size: int = 16,
        learning_rate: float = 0.003,
        val_fraction: float = 0.25,
        min_fresh_records: int = 32,
        max_train_shards: int = 64,
        gpu: str = "RTX6000",
        eval_records: int = 64,
        cte_gain_m: float = 0.6,
        seed: int = 0,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.store = store
        self.registry = registry
        self.world = world
        self.scheduler = scheduler
        self.model_name = model_name
        self.model_scale = float(model_scale)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.val_fraction = float(val_fraction)
        self.min_fresh_records = int(min_fresh_records)
        self.max_train_shards = int(max_train_shards)
        self.gpu = gpu_spec(gpu)
        self.eval_records = int(eval_records)
        self.cte_gain_m = float(cte_gain_m)
        self.seed = int(seed)
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics
        self.clean = store.create_container(CLEAN_CONTAINER)
        self._pending_fresh = 0
        # Held-out eval pool: the same labelled frames judge every
        # candidate, so per-round cte values are directly comparable.
        self._eval_frames, self._eval_labels = world.eval_pool(
            self.eval_records, seed_from_name("fleet-eval", self.seed)
        )

    # ------------------------------------------------------------- wake

    def should_train(self, fresh_records: int) -> bool:
        """Data threshold: enough new records since the last checkpoint?

        The first checkpoint (no stable yet) trains on whatever exists —
        an empty fleet must still bootstrap.
        """
        self._pending_fresh += int(fresh_records)
        if self.registry.resolve(TAG_STABLE) is None:
            return True
        return self._pending_fresh >= self.min_fresh_records

    def train_round(self, round_no: int) -> TrainReport:
        """Retrain on the shard window and publish the candidate."""
        frames, labels = self._load_window()
        if frames.shape[0] < 4:
            raise FleetError(
                f"round {round_no}: only {frames.shape[0]} cleaned records; "
                "cannot train"
            )
        with self.tracer.span(
            "fleet.train", round=round_no, samples=int(frames.shape[0])
        ):
            split = self._split(frames, labels, round_no)
            model, warm_start = self._warm_start_model()
            trainer = Trainer(
                optimizer=Adam(learning_rate=self.learning_rate),
                batch_size=self.batch_size,
                epochs=self.epochs,
                shuffle_seed=seed_from_name(f"fleet-train-{round_no}", self.seed),
                # Compiled training plans are bitwise-identical to the
                # reference layers, so checkpoints do not depend on it.
                use_plan=True,
            )
            history = trainer.fit(model, split)
            train_s = self._charge_train_time(model, history.samples_seen)
            eval_cte_m = self.cte_gain_m * self.world.steering_error(
                model, self._eval_frames, self._eval_labels
            )
            val_loss = history.val_loss[-1] if history.val_loss else 0.0
            version = self.registry.publish(
                model,
                metrics={
                    "round": round_no,
                    "samples": int(frames.shape[0]),
                    "epochs": history.epochs,
                    "val_loss": round(float(val_loss), 6),
                    "eval_cte_m": round(float(eval_cte_m), 6),
                    "warm_start": warm_start,
                },
                changelog=f"round {round_no} retrain",
            )
        self._pending_fresh = 0
        if self.metrics is not None:
            self.metrics.counter("fleet.candidates").inc()
            self.metrics.histogram("fleet.train_s").observe(train_s)
        return TrainReport(
            round_no=round_no,
            version=version,
            samples=int(frames.shape[0]),
            epochs=history.epochs,
            val_loss=float(val_loss),
            eval_cte_m=float(eval_cte_m),
            train_s=train_s,
            warm_start=warm_start,
            published_at_s=self.scheduler.clock.now,
        )

    # ---------------------------------------------------------- internals

    def _load_window(self) -> tuple[np.ndarray, np.ndarray]:
        """Concatenate the newest ``max_train_shards`` cleaned shards."""
        names = self.clean.list()[-self.max_train_shards:]
        frame_parts: list[np.ndarray] = []
        label_parts: list[np.ndarray] = []
        for name in names:
            frames, labels = decode_shard(self.clean.get(name).data)
            frame_parts.append(frames)
            label_parts.append(labels)
        if not frame_parts:
            return (
                np.zeros((0,) + self.world.frame_shape, dtype=np.uint8),
                np.zeros((0, 2), dtype=np.float32),
            )
        return np.concatenate(frame_parts), np.concatenate(label_parts)

    def _split(
        self, frames: np.ndarray, labels: np.ndarray, round_no: int
    ) -> ArraySplit:
        x = images_to_float(frames)
        y = labels.astype(np.float32)
        rng = ensure_rng(seed_from_name(f"fleet-split-{round_no}", self.seed))
        order = rng.permutation(len(x))
        x, y = x[order], y[order]
        n_val = max(1, int(len(x) * self.val_fraction))
        return ArraySplit(
            x_train=x[n_val:], y_train=y[n_val:], x_val=x[:n_val], y_val=y[:n_val]
        )

    def _warm_start_model(self):
        stable = self.registry.resolve(TAG_STABLE)
        if stable is not None:
            return self.registry.load(stable), stable
        model = create_model(
            self.model_name,
            input_shape=self.world.frame_shape,
            scale=self.model_scale,
            seed=seed_from_name("fleet-model-init", self.seed),
        )
        return model, 0

    def _charge_train_time(self, model, samples_seen: int) -> float:
        """Advance the simulated clock by the GPU-model training cost."""
        flops = estimate_flops_per_sample(model) * max(samples_seen, 1)
        train_s = flops / self.gpu.effective_flops
        self.scheduler.run_until(self.scheduler.clock.now + train_s)
        return train_s
