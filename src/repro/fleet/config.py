"""Configuration for the fleet continuous-learning loop.

One frozen dataclass holds every knob of the loop — data plane, trainer
thresholds, rollout stages, gates, and per-round fault plans — so a
whole experiment is a value that can be logged, varied in benchmarks,
and replayed byte-identically from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.common.rng import DEFAULT_SEED
from repro.faults.plan import FaultPlan
from repro.fleet.gates import GateThresholds

__all__ = ["FleetConfig"]


@dataclass(frozen=True)
class FleetConfig:
    """Everything one continuum-loop run depends on.

    Times are simulated seconds.  ``poison_rounds`` lists data-collection
    rounds whose steering labels are inverted (degraded candidates);
    ``canary_fault_plans`` maps a round number to a fault plan whose
    times are *relative to that round's canary stage start* (crashed
    canaries); ``store_fault_plan`` uses absolute loop times against
    ``store:<container>`` targets (partitioned ingest).
    """

    # ------------------------------------------------------- data plane
    n_vehicles: int = 8
    flushes_per_round: int = 2
    records_per_flush: int = 16
    frame_hw: tuple[int, int] = (16, 24)
    data_window_s: float = 4.0
    # ---------------------------------------------------------- trainer
    model_name: str = "linear"
    model_scale: float = 0.25
    epochs: int = 6
    batch_size: int = 16
    learning_rate: float = 0.003
    val_fraction: float = 0.25
    min_fresh_records: int = 32
    max_train_shards: int = 64
    gpu: str = "RTX6000"
    eval_records: int = 64
    # ---------------------------------------------------------- serving
    stage_vehicles: int = 6
    stage_duration_s: float = 1.0
    stage_dt: float = 0.05
    deadline_ticks: int = 2
    stable_replicas: int = 2
    canary_replicas: int = 1
    canary_fraction: float = 0.3
    # ------------------------------------------------- rounds and gates
    rounds: int = 3
    gates: GateThresholds = field(default_factory=GateThresholds)
    cte_gain_m: float = 0.6
    seed: int = DEFAULT_SEED
    # ------------------------------------------------------- fault dials
    poison_rounds: tuple[int, ...] = ()
    canary_fault_plans: tuple[tuple[int, FaultPlan], ...] = ()
    store_fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.n_vehicles < 1 or self.stage_vehicles < 1:
            raise ConfigurationError("need >= 1 vehicle in data and stage fleets")
        if self.flushes_per_round < 1 or self.records_per_flush < 1:
            raise ConfigurationError(
                "flushes_per_round and records_per_flush must be >= 1"
            )
        if self.rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {self.rounds}")
        if self.data_window_s <= 0 or self.stage_duration_s <= 0:
            raise ConfigurationError("data_window_s and stage_duration_s must be > 0")
        if self.stable_replicas < 1 or self.canary_replicas < 1:
            raise ConfigurationError("need >= 1 stable and >= 1 canary replica")
        if not 0.0 < self.canary_fraction < 1.0:
            raise ConfigurationError(
                f"canary_fraction must be in (0, 1), got {self.canary_fraction}"
            )
        if not 0.0 < self.val_fraction < 1.0:
            raise ConfigurationError(
                f"val_fraction must be in (0, 1), got {self.val_fraction}"
            )
        if self.eval_records < 1 or self.max_train_shards < 1:
            raise ConfigurationError(
                "eval_records and max_train_shards must be >= 1"
            )
        for round_no in self.poison_rounds:
            if not 1 <= round_no <= self.rounds:
                raise ConfigurationError(
                    f"poison round {round_no} outside 1..{self.rounds}"
                )
        for round_no, _plan in self.canary_fault_plans:
            if not 1 <= round_no <= self.rounds:
                raise ConfigurationError(
                    f"fault-plan round {round_no} outside 1..{self.rounds}"
                )

    @property
    def records_per_round(self) -> int:
        """Records the whole fleet flushes in one collection round."""
        return self.n_vehicles * self.flushes_per_round * self.records_per_flush

    def canary_plan_for(self, round_no: int) -> FaultPlan | None:
        """The stage-relative canary fault plan for ``round_no``."""
        for entry_round, plan in self.canary_fault_plans:
            if entry_round == round_no:
                return plan
        return None
