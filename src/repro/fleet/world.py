"""A synthetic, *learnable* driving world for the continuous loop.

The continuum loop needs driving data whose frames actually predict the
expert steering command — otherwise retraining could never improve the
fleet and promotion gates would be noise.  :class:`SyntheticTrackWorld`
generates camera frames whose pixels are an affine function of two
latent track variables (lateral offset and upcoming curvature) plus
seeded sensor noise, and labels each frame with the expert command::

    angle    = clip(-(k_offset * offset + k_curv * curvature), -1, 1)
    throttle = base - slowdown * |angle|

A model trained on these shards genuinely learns to steer (falling
cross-track error); a *poisoned* round inverts the recorded steering
labels, producing the confidently-wrong candidate the rollback tests
need.  Everything is a pure function of the structure seed and the
caller-supplied stream, so identical seeds yield identical worlds.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng

__all__ = ["SyntheticTrackWorld"]


class SyntheticTrackWorld:
    """Deterministic frame/label generator with a learnable structure."""

    def __init__(
        self,
        frame_hw: tuple[int, int] = (16, 24),
        seed: int | np.random.Generator | None = None,
        noise: float = 6.0,
        k_offset: float = 0.9,
        k_curv: float = 0.35,
    ) -> None:
        if len(frame_hw) != 2 or frame_hw[0] < 5 or frame_hw[1] < 5:
            raise ConfigurationError(
                f"frame_hw must be (H, W) with H, W >= 5, got {frame_hw}"
            )
        if noise < 0:
            raise ConfigurationError(f"noise must be >= 0, got {noise}")
        rng = ensure_rng(seed)
        h, w = int(frame_hw[0]), int(frame_hw[1])
        self.frame_hw = (h, w)
        self.noise = float(noise)
        self.k_offset = float(k_offset)
        self.k_curv = float(k_curv)
        # Fixed "scene" structure: a base image plus one gradient image
        # per latent variable.  Frames are base + offset * g_off +
        # curvature * g_curv (+ noise) — linearly decodable, so even a
        # small model can learn the steering function from few shards.
        self._base = rng.uniform(90.0, 160.0, (h, w, 3))
        self._g_offset = rng.normal(0.0, 38.0, (h, w, 3))
        self._g_curv = rng.normal(0.0, 24.0, (h, w, 3))

    @property
    def frame_shape(self) -> tuple[int, int, int]:
        """Model input shape ``(H, W, 3)``."""
        return (self.frame_hw[0], self.frame_hw[1], 3)

    def sample(
        self,
        rng: int | np.random.Generator | None,
        n: int,
        poisoned: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` labelled records from ``rng``.

        Returns ``(frames, labels)``: uint8 frames ``(n, H, W, 3)`` and
        float32 labels ``(n, 2)`` as ``[angle, throttle]`` rows.  A
        poisoned draw inverts the recorded steering labels (the frames
        stay honest) — training on it yields a model that confidently
        steers the wrong way.
        """
        if n < 1:
            raise ConfigurationError(f"need n >= 1 records, got {n}")
        gen = ensure_rng(rng)
        offsets = gen.uniform(-1.0, 1.0, n)
        curvatures = gen.uniform(-1.0, 1.0, n)
        pixels = (
            self._base[None, :, :, :]
            + offsets[:, None, None, None] * self._g_offset[None, :, :, :]
            + curvatures[:, None, None, None] * self._g_curv[None, :, :, :]
        )
        if self.noise > 0:
            pixels = pixels + gen.normal(0.0, self.noise, pixels.shape)
        frames = np.clip(pixels, 0.0, 255.0).astype(np.uint8)
        angles = np.clip(
            -(self.k_offset * offsets + self.k_curv * curvatures), -1.0, 1.0
        )
        if poisoned:
            angles = -angles
        throttles = 0.55 - 0.25 * np.abs(angles)
        labels = np.stack([angles, throttles], axis=1).astype(np.float32)
        return frames, labels

    def eval_pool(
        self, n: int, seed: int | np.random.Generator | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """A held-out labelled pool (never poisoned) for gates/serving."""
        return self.sample(ensure_rng(seed), n, poisoned=False)

    def steering_error(self, model, frames: np.ndarray, labels: np.ndarray) -> float:
        """Mean |predicted − expert| steering error of ``model``."""
        if len(frames) == 0:
            raise ConfigurationError("steering_error needs at least one frame")
        commands = model.predict_frames(frames)
        return float(np.mean(np.abs(commands[:, 0] - labels[:, 0])))
