"""Staged rollouts: shadow → canary → stable, with automatic rollback.

The rollout controller takes the freshly published ``candidate`` and
walks it through the promotion lattice:

1. **shadow** — a mixed fleet serves the closed vehicle loop from the
   current stable model while every request is mirrored as a pinned
   clone to candidate replicas.  The candidate is measured on live
   traffic without ever steering a vehicle.
2. **canary** — the traffic-split router sends a configured fraction of
   *real* traffic to the candidate replicas (optionally under an armed
   fault plan — crashed canaries are part of the test).
3. **stable** — both gates passed: the ``stable`` tag moves to the
   candidate and the next round's vehicles drive on it.

Any gate failure rolls the candidate back: its tags are dropped and the
previous stable keeps serving — including when the failure is *induced*
(a canary crash makes the candidate fail its min-completions gate, so a
fleet that kills canaries auto-rolls-back).  Every decision is recorded
with explicit reasons in the stage reports.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.common.clock import EventScheduler
from repro.common.errors import RolloutError
from repro.common.rng import seed_from_name
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.fleet.config import FleetConfig
from repro.fleet.gates import GateDecision, evaluate_gate
from repro.fleet.registry import (
    TAG_CANARY,
    TAG_CANDIDATE,
    TAG_STABLE,
    ModelRegistry,
)
from repro.fleet.stage import StageHarness, VersionScoreboard, VersionStats
from repro.fleet.world import SyntheticTrackWorld
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer, Tracer
from repro.serve.replica import BatchLatencyModel
from repro.serve.router import TrafficSplitRouter
from repro.serve.service import InferenceService
from repro.serve.workload import VehicleFleetWorkload

__all__ = [
    "StageReport",
    "RolloutReport",
    "RolloutController",
    "STAGE_SHADOW",
    "STAGE_CANARY",
    "OUTCOME_BOOTSTRAPPED",
    "OUTCOME_PROMOTED",
    "OUTCOME_ROLLED_BACK",
]

STAGE_SHADOW = "shadow"
STAGE_CANARY = "canary"

OUTCOME_BOOTSTRAPPED = "bootstrapped"
OUTCOME_PROMOTED = "promoted"
OUTCOME_ROLLED_BACK = "rolled-back"

#: Serving cost model for rollout stages (GPU-ish: overhead-dominated).
STAGE_LATENCY = BatchLatencyModel(overhead_s=0.004, per_item_s=0.0015, jitter=0.05)


@dataclass(frozen=True)
class StageReport:
    """One rollout stage: measurements + the gate verdict."""

    stage: str
    candidate: VersionStats
    baseline: VersionStats
    stale_ratio: float
    crashes: int
    decision: GateDecision

    def to_dict(self) -> dict:
        """JSON-ready view."""
        return {
            "stage": self.stage,
            "candidate": self.candidate.to_dict(),
            "baseline": self.baseline.to_dict(),
            "stale_ratio": self.stale_ratio,
            "crashes": self.crashes,
            "decision": self.decision.to_dict(),
        }


@dataclass(frozen=True)
class RolloutReport:
    """One candidate's walk through the promotion lattice."""

    round_no: int
    candidate_version: int
    outcome: str
    prior_stable: int
    new_stable: int
    history: tuple[str, ...]
    stages: tuple[StageReport, ...]

    def to_dict(self) -> dict:
        """JSON-ready view."""
        return {
            "round_no": self.round_no,
            "candidate_version": self.candidate_version,
            "outcome": self.outcome,
            "prior_stable": self.prior_stable,
            "new_stable": self.new_stable,
            "history": list(self.history),
            "stages": [stage.to_dict() for stage in self.stages],
        }


class RolloutController:
    """Promotes registry candidates through shadow and canary gates."""

    def __init__(
        self,
        registry: ModelRegistry,
        world: SyntheticTrackWorld,
        scheduler: EventScheduler,
        config: FleetConfig,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.registry = registry
        self.world = world
        self.scheduler = scheduler
        self.config = config
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics
        # One labelled pool serves every stage of every round, so stage
        # cross-track errors are comparable across the whole run.
        self._frames, labels = world.eval_pool(
            config.eval_records, seed_from_name("fleet-stage-pool", config.seed)
        )
        self._experts = labels[:, 0]

    # ------------------------------------------------------------- rounds

    def run_round(self, round_no: int) -> RolloutReport:
        """Walk the current ``candidate`` through the lattice."""
        candidate = self.registry.resolve(TAG_CANDIDATE)
        if candidate is None:
            raise RolloutError(f"round {round_no}: no candidate to roll out")
        stable = self.registry.resolve(TAG_STABLE)
        if stable is None:
            # Bootstrap: an empty fleet has nothing to gate against — the
            # first checkpoint becomes stable directly.
            self.registry.tag(TAG_STABLE, candidate)
            self.registry.untag(TAG_CANDIDATE)
            return RolloutReport(
                round_no=round_no,
                candidate_version=candidate,
                outcome=OUTCOME_BOOTSTRAPPED,
                prior_stable=0,
                new_stable=candidate,
                history=("candidate", "stable"),
                stages=(),
            )
        if candidate == stable:
            raise RolloutError(
                f"round {round_no}: candidate {candidate} is already stable"
            )
        stages: list[StageReport] = []
        history: list[str] = ["candidate"]
        with self.tracer.span(
            "fleet.rollout", round=round_no, candidate=candidate
        ):
            shadow = self._run_stage(
                STAGE_SHADOW, round_no, candidate, stable, fault_plan=None
            )
            stages.append(shadow)
            history.append(STAGE_SHADOW)
            if shadow.decision.passed:
                self.registry.tag(TAG_CANARY, candidate)
                canary = self._run_stage(
                    STAGE_CANARY,
                    round_no,
                    candidate,
                    stable,
                    fault_plan=self.config.canary_plan_for(round_no),
                )
                stages.append(canary)
                history.append(STAGE_CANARY)
                passed = canary.decision.passed
            else:
                passed = False
        if passed:
            self.registry.tag(TAG_STABLE, candidate)
            self.registry.untag(TAG_CANARY)
            self.registry.untag(TAG_CANDIDATE)
            history.append("stable")
            outcome = OUTCOME_PROMOTED
            new_stable = candidate
        else:
            self.registry.untag(TAG_CANARY)
            self.registry.untag(TAG_CANDIDATE)
            history.append(OUTCOME_ROLLED_BACK)
            outcome = OUTCOME_ROLLED_BACK
            new_stable = stable
        if self.metrics is not None:
            kind = "promotion" if passed else "rollback"
            self.metrics.counter(f"fleet.{kind}s").inc()
        return RolloutReport(
            round_no=round_no,
            candidate_version=candidate,
            outcome=outcome,
            prior_stable=stable,
            new_stable=new_stable,
            history=tuple(history),
            stages=tuple(stages),
        )

    # ------------------------------------------------------------- stages

    def _run_stage(
        self,
        stage: str,
        round_no: int,
        candidate: int,
        stable: int,
        fault_plan: FaultPlan | None,
    ) -> StageReport:
        """Serve the closed vehicle loop against one mixed fleet."""
        config = self.config
        cand_label = self.registry.version_label(candidate)
        stable_label = self.registry.version_label(stable)
        if stage == STAGE_SHADOW:
            weights = {stable_label: 1.0}
            shadow_version = cand_label
        else:
            weights = {
                stable_label: 1.0 - config.canary_fraction,
                cand_label: config.canary_fraction,
            }
            shadow_version = ""
        injector = None
        if fault_plan is not None:
            start = self.scheduler.clock.now
            shifted = FaultPlan(
                [
                    dataclasses.replace(spec, at_s=start + spec.at_s)
                    for spec in fault_plan
                ]
            )
            injector = FaultInjector(
                shifted,
                seed=seed_from_name(f"fleet-faults-{round_no}", config.seed),
            )
        service = InferenceService(
            STAGE_LATENCY,
            scheduler=self.scheduler,
            # compile_plans: each stage pins freshly loaded versions, so
            # the plan is recompiled whenever the rollout changes models.
            model=self.registry.load(stable, compile_plans=True),
            model_version=stable_label,
            n_replicas=config.stable_replicas,
            router=TrafficSplitRouter(weights),
            # "wait" fires each replica's queue after a short window; the
            # adaptive policy would idle until deadline pressure, which at
            # 20 Hz reads as one full stale tick per request.
            batch_policy="wait",
            max_batch=4,
            max_wait_s=0.004,
            seed=seed_from_name(f"fleet-{stage}-{round_no}", config.seed),
            injector=injector,
            # Per-batch serve spans are deliberately not traced here: the
            # fleet golden locks loop-level structure (rounds, stages,
            # gates); serve-span detail is covered by the serve goldens.
            metrics=self.metrics,
        )
        candidate_model = self.registry.load(candidate, compile_plans=True)
        for _ in range(config.canary_replicas):
            service.add_replica(model=candidate_model, model_version=cand_label)
        scoreboard = VersionScoreboard(cte_gain_m=config.cte_gain_m)
        harness = StageHarness(
            inner=VehicleFleetWorkload(
                n_vehicles=config.stage_vehicles,
                dt=config.stage_dt,
                deadline_ticks=config.deadline_ticks,
                seed=seed_from_name(f"fleet-loop-{stage}-{round_no}", config.seed),
            ),
            frames=self._frames,
            expert_angles=self._experts,
            scoreboard=scoreboard,
            shadow_version=shadow_version,
        )
        with self.tracer.span(
            "fleet.stage", stage=stage, round=round_no, candidate=cand_label
        ):
            service.run(harness, config.stage_duration_s)
        candidate_stats = scoreboard.stats(cand_label)
        baseline_stats = scoreboard.stats(stable_label)
        decision = evaluate_gate(
            stage,
            candidate_stats,
            baseline_stats,
            harness.stale_ratio,
            config.gates,
        )
        return StageReport(
            stage=stage,
            candidate=candidate_stats,
            baseline=baseline_stats,
            stale_ratio=harness.stale_ratio,
            crashes=service.crashes,
            decision=decision,
        )
