"""Fleet continuous learning: the closed edge-to-cloud continuum loop.

The paper's central claim is a *loop*, not a pipeline: vehicles at the
edge generate driving data, the cloud retrains the autopilot on it, and
improved models flow back to the edge — continuously and safely.  This
package closes that loop on the repo's deterministic substrate:

* :mod:`repro.fleet.world` — a synthetic, learnable driving world;
* :mod:`repro.fleet.shards` / :mod:`repro.fleet.dataplane` — vehicles
  flushing training shards into the object store, plus the ingest stage
  that cleans them;
* :mod:`repro.fleet.trainer` — threshold-gated incremental retraining,
  warm-started from the stable checkpoint;
* :mod:`repro.fleet.registry` — TroviHub-backed model registry with
  mutable ``candidate`` / ``canary`` / ``stable`` stage tags;
* :mod:`repro.fleet.stage` / :mod:`repro.fleet.gates` /
  :mod:`repro.fleet.rollout` — shadow → canary → stable rollouts gated
  on serving SLOs and driving quality, with automatic rollback;
* :mod:`repro.fleet.loop` — the round-by-round orchestrator.
"""

from repro.fleet.config import FleetConfig
from repro.fleet.dataplane import (
    CLEAN_CONTAINER,
    RAW_CONTAINER,
    CollectReport,
    FleetDataPlane,
    IngestReport,
    IngestStage,
)
from repro.fleet.gates import GateDecision, GateThresholds, evaluate_gate
from repro.fleet.loop import FleetLoop, FleetSummary, RoundReport
from repro.fleet.registry import (
    TAG_CANARY,
    TAG_CANDIDATE,
    TAG_STABLE,
    ModelRegistry,
)
from repro.fleet.rollout import (
    OUTCOME_BOOTSTRAPPED,
    OUTCOME_PROMOTED,
    OUTCOME_ROLLED_BACK,
    RolloutController,
    RolloutReport,
    StageReport,
)
from repro.fleet.shards import decode_shard, encode_shard, shard_records
from repro.fleet.stage import StageHarness, VersionScoreboard, VersionStats
from repro.fleet.trainer import IncrementalTrainer, TrainReport
from repro.fleet.world import SyntheticTrackWorld

__all__ = [
    "FleetConfig",
    "CLEAN_CONTAINER",
    "RAW_CONTAINER",
    "CollectReport",
    "FleetDataPlane",
    "IngestReport",
    "IngestStage",
    "GateDecision",
    "GateThresholds",
    "evaluate_gate",
    "FleetLoop",
    "FleetSummary",
    "RoundReport",
    "TAG_CANARY",
    "TAG_CANDIDATE",
    "TAG_STABLE",
    "ModelRegistry",
    "OUTCOME_BOOTSTRAPPED",
    "OUTCOME_PROMOTED",
    "OUTCOME_ROLLED_BACK",
    "RolloutController",
    "RolloutReport",
    "StageReport",
    "decode_shard",
    "encode_shard",
    "shard_records",
    "StageHarness",
    "VersionScoreboard",
    "VersionStats",
    "IncrementalTrainer",
    "TrainReport",
    "SyntheticTrackWorld",
]
