"""The data plane: vehicles flush driving shards; ingest cleans them.

Edge side of the continuum loop.  Each simulated vehicle owns a seeded
record stream (keyed by its name, so fleet size changes never perturb
another vehicle's data) and periodically flushes one encoded shard into
the ``fleet-raw`` object-store container on scheduler events spread
across the collection window.  The cloud-side :class:`IngestStage` then
scans the raw container, validates + cleans each new shard (non-finite
labels dropped, commands clipped to the actuator range), and writes the
result to ``fleet-clean`` — the accumulating training set.

Both sides tolerate the fault layer: a flush or ingest hitting an
injected store error (directly or after retries) is counted and
skipped, never fatal — a partitioned store degrades data freshness,
which the trainer's threshold and the rollout gates then see.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.clock import EventScheduler
from repro.common.errors import (
    CircuitOpenError,
    FleetError,
    InjectedFaultError,
    RetryExhaustedError,
)
from repro.common.rng import ensure_rng, seed_from_name
from repro.fleet.shards import decode_shard, encode_shard
from repro.fleet.world import SyntheticTrackWorld
from repro.objectstore.store import ObjectStore
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer, Tracer

__all__ = [
    "RAW_CONTAINER",
    "CLEAN_CONTAINER",
    "CollectReport",
    "IngestReport",
    "FleetDataPlane",
    "IngestStage",
]

#: Container vehicles flush raw shards into.
RAW_CONTAINER = "fleet-raw"
#: Container the ingest stage writes cleaned shards into.
CLEAN_CONTAINER = "fleet-clean"

#: Store failures a flush/ingest survives (counted, not raised).
_STORE_FAILURES = (InjectedFaultError, RetryExhaustedError, CircuitOpenError)


@dataclass(frozen=True)
class CollectReport:
    """One collection round: what the fleet managed to flush."""

    round_no: int
    flushed_shards: int
    flushed_records: int
    failed_flushes: int

    def to_dict(self) -> dict:
        """JSON-ready view."""
        return {
            "round_no": self.round_no,
            "flushed_shards": self.flushed_shards,
            "flushed_records": self.flushed_records,
            "failed_flushes": self.failed_flushes,
        }


@dataclass(frozen=True)
class IngestReport:
    """One ingest pass: fresh training data accumulated."""

    round_no: int
    fresh_shards: int
    fresh_records: int
    dropped_records: int
    skipped_objects: int
    failed_reads: int

    def to_dict(self) -> dict:
        """JSON-ready view."""
        return {
            "round_no": self.round_no,
            "fresh_shards": self.fresh_shards,
            "fresh_records": self.fresh_records,
            "dropped_records": self.dropped_records,
            "skipped_objects": self.skipped_objects,
            "failed_reads": self.failed_reads,
        }


class FleetDataPlane:
    """Vehicle-side shard flushing on the shared event scheduler."""

    def __init__(
        self,
        store: ObjectStore,
        world: SyntheticTrackWorld,
        scheduler: EventScheduler,
        n_vehicles: int,
        flushes_per_round: int,
        records_per_flush: int,
        seed: int = 0,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if n_vehicles < 1:
            raise FleetError(f"need >= 1 vehicle, got {n_vehicles}")
        self.store = store
        self.world = world
        self.scheduler = scheduler
        self.n_vehicles = int(n_vehicles)
        self.flushes_per_round = int(flushes_per_round)
        self.records_per_flush = int(records_per_flush)
        self.seed = int(seed)
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics
        self.raw = store.create_container(RAW_CONTAINER)
        # One stream per vehicle, keyed by name: vehicle veh-0003 flushes
        # identical records whether the fleet has 4 vehicles or 4000.
        self._rngs: dict[str, np.random.Generator] = {}
        for index in range(self.n_vehicles):
            name = self._vehicle_name(index)
            self._rngs[name] = ensure_rng(seed_from_name(name, self.seed))

    @staticmethod
    def _vehicle_name(index: int) -> str:
        return f"veh-{index:04d}"

    def collect_round(
        self, round_no: int, window_s: float, poisoned: bool = False
    ) -> CollectReport:
        """Run one collection window; every vehicle flushes on schedule.

        Flush instants are spread deterministically across the window
        (vehicle-staggered), so raw-container object order and any
        store-error fault windows interact reproducibly.
        """
        if window_s <= 0:
            raise FleetError(f"window_s must be positive, got {window_s}")
        start = self.scheduler.clock.now
        tallies = {"shards": 0, "records": 0, "failures": 0}
        with self.tracer.span(
            "fleet.collect", round=round_no, vehicles=self.n_vehicles
        ):
            for index in range(self.n_vehicles):
                name = self._vehicle_name(index)
                for flush in range(self.flushes_per_round):
                    offset = (
                        (flush + (index + 1) / (self.n_vehicles + 1))
                        * window_s
                        / self.flushes_per_round
                    )
                    self.scheduler.schedule_at(
                        start + offset,
                        self._make_flush(
                            name, round_no, flush, poisoned, tallies
                        ),
                        label="fleet.flush",
                    )
            self.scheduler.run_until(start + window_s)
        report = CollectReport(
            round_no=round_no,
            flushed_shards=tallies["shards"],
            flushed_records=tallies["records"],
            failed_flushes=tallies["failures"],
        )
        if self.metrics is not None:
            self.metrics.counter("fleet.flushed_records").inc(report.flushed_records)
            if report.failed_flushes:
                self.metrics.counter("fleet.failed_flushes").inc(
                    report.failed_flushes
                )
        return report

    def _make_flush(
        self,
        vehicle: str,
        round_no: int,
        flush: int,
        poisoned: bool,
        tallies: dict[str, int],
    ):
        def run_flush() -> None:
            frames, labels = self.world.sample(
                self._rngs[vehicle], self.records_per_flush, poisoned=poisoned
            )
            name = f"r{round_no:03d}-{vehicle}-f{flush:02d}.npz"
            try:
                self.raw.put(
                    name,
                    encode_shard(frames, labels),
                    content_type="application/x-npz",
                    metadata={"vehicle": vehicle, "round": str(round_no)},
                )
            except _STORE_FAILURES:
                # The store is partitioned or flapping: the vehicle keeps
                # driving and the shard is simply lost (freshness drops).
                tallies["failures"] += 1
                return
            tallies["shards"] += 1
            tallies["records"] += int(frames.shape[0])

        return run_flush


class IngestStage:
    """Cloud-side clean/accumulate pass over newly flushed shards."""

    def __init__(
        self,
        store: ObjectStore,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.store = store
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics
        self.raw = store.create_container(RAW_CONTAINER)
        self.clean = store.create_container(CLEAN_CONTAINER)
        self._processed: set[str] = set()

    def run(self, round_no: int) -> IngestReport:
        """Clean every unprocessed raw shard into the clean container."""
        fresh_shards = 0
        fresh_records = 0
        dropped = 0
        skipped = 0
        failed = 0
        with self.tracer.span("fleet.ingest", round=round_no):
            for name in self.raw.list():
                if name in self._processed:
                    continue
                try:
                    payload = self.raw.get(name).data
                except _STORE_FAILURES:
                    # Unreachable this pass; retry next round.
                    failed += 1
                    continue
                try:
                    frames, labels = decode_shard(payload)
                except FleetError:
                    self._processed.add(name)
                    skipped += 1
                    continue
                frames, labels, removed = self._clean(frames, labels)
                dropped += removed
                if frames.shape[0] == 0:
                    self._processed.add(name)
                    skipped += 1
                    continue
                try:
                    self.clean.put(
                        name,
                        encode_shard(frames, labels),
                        content_type="application/x-npz",
                    )
                except _STORE_FAILURES:
                    failed += 1
                    continue
                self._processed.add(name)
                fresh_shards += 1
                fresh_records += int(frames.shape[0])
        if self.metrics is not None and fresh_records:
            self.metrics.counter("fleet.fresh_records").inc(fresh_records)
        return IngestReport(
            round_no=round_no,
            fresh_shards=fresh_shards,
            fresh_records=fresh_records,
            dropped_records=dropped,
            skipped_objects=skipped,
            failed_reads=failed,
        )

    @staticmethod
    def _clean(
        frames: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Drop non-finite rows; clip commands to the actuator range."""
        finite = np.all(np.isfinite(labels), axis=1)
        removed = int(labels.shape[0] - finite.sum())
        frames = frames[finite]
        labels = np.clip(labels[finite], -1.0, 1.0)
        return frames, labels, removed
