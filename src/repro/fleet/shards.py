"""Training shards: the wire format between vehicles and the trainer.

A shard is one vehicle flush — a batch of ``(frame, angle, throttle)``
records — serialised as a single ``.npz`` payload so it can live as one
object-store object.  Encoding is deterministic (fixed array names, no
timestamps) and decoding validates shapes, so a corrupt object surfaces
as a typed :class:`~repro.common.errors.FleetError` the ingest stage
can skip, not a crash.
"""

from __future__ import annotations

import io
import zipfile

import numpy as np

from repro.common.errors import FleetError

__all__ = ["encode_shard", "decode_shard", "shard_records"]


def encode_shard(frames: np.ndarray, labels: np.ndarray) -> bytes:
    """Serialise ``(n, H, W, 3)`` uint8 frames + ``(n, 2)`` labels."""
    frames = np.asarray(frames)
    labels = np.asarray(labels, dtype=np.float32)
    if frames.ndim != 4 or frames.shape[3] != 3 or frames.dtype != np.uint8:
        raise FleetError(
            f"shard frames must be uint8 (n, H, W, 3), got "
            f"{frames.dtype} {frames.shape}"
        )
    if labels.ndim != 2 or labels.shape != (frames.shape[0], 2):
        raise FleetError(
            f"shard labels must be (n, 2) aligned with frames, got "
            f"{labels.shape} for {frames.shape[0]} frames"
        )
    buf = io.BytesIO()
    np.savez(buf, frames=frames, labels=labels)
    return buf.getvalue()


def decode_shard(data: bytes) -> tuple[np.ndarray, np.ndarray]:
    """Rebuild ``(frames, labels)`` from :func:`encode_shard` output."""
    try:
        payload = np.load(io.BytesIO(data), allow_pickle=False)
        frames = payload["frames"]
        labels = payload["labels"]
    except (OSError, ValueError, KeyError, zipfile.BadZipFile, EOFError) as exc:
        raise FleetError(f"unreadable shard payload: {exc}") from exc
    if (
        frames.ndim != 4
        or frames.dtype != np.uint8
        or labels.shape != (frames.shape[0], 2)
    ):
        raise FleetError(
            f"malformed shard: frames {frames.dtype} {frames.shape}, "
            f"labels {labels.shape}"
        )
    return frames, labels


def shard_records(data: bytes) -> int:
    """Record count of an encoded shard (decodes and validates)."""
    frames, _ = decode_shard(data)
    return int(frames.shape[0])
