"""Stage plumbing: per-version scoring and shadow traffic mirroring.

A rollout stage runs the closed vehicle loop against a mixed fleet
(stable + candidate replicas) and must attribute every completion to
the *model version* that served it.  Two pieces do that:

* :class:`VersionScoreboard` — streaming per-version accounting of
  completions, deadline attainment, latency, and the cross-track-error
  proxy (|predicted angle − expert angle| × a metres-per-unit gain).
* :class:`StageHarness` — a :class:`~repro.serve.workload.Workload`
  facade wrapped around a :class:`~repro.serve.workload.VehicleFleetWorkload`.
  It poses as the service to the inner workload, attaches *labelled*
  frames from the world's eval pool to every request (so steering error
  is measurable), optionally tees a pinned shadow clone of each request
  at the candidate version, and keeps shadow responses out of the inner
  closed loop so shadow traffic never perturbs vehicle behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.obs.metrics import StreamingHistogram
from repro.serve.request import Request
from repro.serve.workload import VehicleFleetWorkload, Workload

__all__ = ["VersionStats", "VersionScoreboard", "StageHarness", "SHADOW_PREFIX"]

#: Source prefix marking mirrored (non-closed-loop) shadow requests.
SHADOW_PREFIX = "shadow:"


@dataclass(frozen=True)
class VersionStats:
    """Immutable snapshot of one model version's stage measurements."""

    version: str
    offered: int
    completed: int
    deadline_met: int
    losses: int
    p95_ms: float
    mean_ms: float
    mean_cte_m: float
    max_cte_m: float

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of completions that blew their deadline."""
        if self.completed == 0:
            return 0.0
        return 1.0 - self.deadline_met / self.completed

    def to_dict(self) -> dict:
        """JSON-ready view (stage reports)."""
        return {
            "version": self.version,
            "offered": self.offered,
            "completed": self.completed,
            "deadline_met": self.deadline_met,
            "losses": self.losses,
            "p95_ms": self.p95_ms,
            "mean_ms": self.mean_ms,
            "mean_cte_m": self.mean_cte_m,
            "max_cte_m": self.max_cte_m,
        }


class _Accumulator:
    """Mutable per-version tallies behind :class:`VersionStats`."""

    def __init__(self) -> None:
        self.offered = 0
        self.completed = 0
        self.deadline_met = 0
        self.losses = 0
        self.err_sum = 0.0
        self.err_max = 0.0
        self.histogram = StreamingHistogram()


class VersionScoreboard:
    """Streaming per-model-version serving + driving-quality stats."""

    def __init__(self, cte_gain_m: float = 0.6) -> None:
        if cte_gain_m <= 0:
            raise ConfigurationError(
                f"cte_gain_m must be positive, got {cte_gain_m}"
            )
        self.cte_gain_m = float(cte_gain_m)
        self._acc: dict[str, _Accumulator] = {}

    def _get(self, version: str) -> _Accumulator:
        acc = self._acc.get(version)
        if acc is None:
            acc = _Accumulator()
            self._acc[version] = acc
        return acc

    def record_offered(self, version: str) -> None:
        """A request was routed toward ``version``."""
        self._get(version).offered += 1

    def record_completion(
        self, version: str, request: Request, expert_angle: float
    ) -> None:
        """Score one completed request against the expert label."""
        acc = self._get(version)
        acc.completed += 1
        if request.met_deadline:
            acc.deadline_met += 1
        acc.histogram.record(max(request.latency_s, 0.0))
        err = abs(request.angle - expert_angle)
        acc.err_sum += err
        acc.err_max = max(acc.err_max, err)

    def record_loss(self, version: str) -> None:
        """A request attributed to ``version`` was lost."""
        self._get(version).losses += 1

    def versions(self) -> list[str]:
        """Version labels seen so far, sorted."""
        return sorted(self._acc)

    def stats(self, version: str) -> VersionStats:
        """Snapshot one version's stats (zeros if never seen)."""
        acc = self._acc.get(version)
        if acc is None:
            acc = _Accumulator()
        completed = acc.completed
        return VersionStats(
            version=version,
            offered=acc.offered,
            completed=completed,
            deadline_met=acc.deadline_met,
            losses=acc.losses,
            p95_ms=acc.histogram.percentile(0.95) * 1e3,
            mean_ms=acc.histogram.mean_s * 1e3,
            mean_cte_m=(
                self.cte_gain_m * acc.err_sum / completed if completed else 0.0
            ),
            max_cte_m=self.cte_gain_m * acc.err_max,
        )


class StageHarness(Workload):
    """Labelled-frame + shadow-mirroring facade over a vehicle workload.

    The inner :class:`VehicleFleetWorkload` sees this harness as its
    service: ``submit`` attaches a labelled eval-pool frame, remembers
    the expert angle by request id, optionally mirrors the request as a
    pinned shadow clone at ``shadow_version``, and forwards to the real
    service.  Responses are scored on the scoreboard by the serving
    replica's model version; only primary responses reach the inner
    closed loop.
    """

    provides_frames = True

    def __init__(
        self,
        inner: VehicleFleetWorkload,
        frames: np.ndarray,
        expert_angles: np.ndarray,
        scoreboard: VersionScoreboard,
        shadow_version: str = "",
    ) -> None:
        if len(frames) == 0 or len(frames) != len(expert_angles):
            raise ConfigurationError(
                "harness needs a non-empty labelled frame pool"
            )
        self._inner = inner
        self._frames = frames
        self._experts = expert_angles
        self.scoreboard = scoreboard
        self.shadow_version = shadow_version
        self.shadows_sent = 0
        self._service = None
        self._pending: dict[str, float] = {}
        self._versions: dict[str, str] = {}
        self._n = 0

    # ----------------------------------------------- service facade

    @property
    def scheduler(self):
        """The real service's scheduler (inner workload ticks on it)."""
        return self._service.scheduler

    def submit(self, request: Request) -> bool:
        """Attach a labelled frame, mirror a shadow clone, and forward."""
        index = self._n % len(self._frames)
        self._n += 1
        request.frame = self._frames[index]
        expert = float(self._experts[index])
        self._pending[request.request_id] = expert
        self.scoreboard.record_offered(self._route_version(request))
        admitted = self._service.submit(request)
        if self.shadow_version:
            clone = Request(
                request_id=f"shd-{request.request_id}",
                source=f"{SHADOW_PREFIX}{request.source}",
                arrival_s=request.arrival_s,
                deadline_s=request.deadline_s,
                priority=request.priority,
                frame=request.frame,
                pin_version=self.shadow_version,
            )
            self._pending[clone.request_id] = expert
            self.scoreboard.record_offered(self.shadow_version)
            self.shadows_sent += 1
            self._service.submit(clone)
        return admitted

    def _route_version(self, request: Request) -> str:
        """Best-effort version attribution at offer time."""
        if request.pin_version:
            return request.pin_version
        return "primary"

    # --------------------------------------------- workload interface

    @property
    def submitted(self) -> int:
        return self._inner.submitted

    @property
    def stale_ticks(self) -> int:
        """Stale-command ticks of the inner closed loop."""
        return self._inner.stale_ticks

    @property
    def stale_ratio(self) -> float:
        """Stale ticks over total ticks of the inner closed loop."""
        ticks = self._inner.ticks
        return self._inner.stale_ticks / ticks if ticks else 0.0

    def start(self, service, until_s: float) -> None:
        self._service = service
        self._inner.start(self, until_s)

    def _version_of(self, replica_id: str) -> str:
        version = self._versions.get(replica_id)
        if version is None:
            version = self._service.version_of(replica_id)
            self._versions[replica_id] = version
        return version

    def on_response(self, request: Request) -> None:
        expert = self._pending.pop(request.request_id, None)
        if expert is not None:
            self.scoreboard.record_completion(
                self._version_of(request.replica_id), request, expert
            )
        if not request.source.startswith(SHADOW_PREFIX):
            self._inner.on_response(request)

    def on_loss(self, request: Request) -> None:
        self._pending.pop(request.request_id, None)
        version = request.pin_version
        if not version and request.replica_id:
            version = self._version_of(request.replica_id)
        self.scoreboard.record_loss(version if version else "unrouted")
        if not request.source.startswith(SHADOW_PREFIX):
            self._inner.on_loss(request)
