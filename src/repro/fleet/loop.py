"""The continuum loop: collect → ingest → retrain → stage → promote.

:class:`FleetLoop` closes the paper's edge-to-cloud learning cycle on
one shared discrete-event scheduler.  Each round:

1. the vehicle fleet flushes driving shards into the object store
   (edge → cloud data movement);
2. the ingest stage cleans new shards into the training set;
3. the trainer — if enough fresh data accumulated — retrains the
   autopilot from the current stable checkpoint and publishes a
   ``candidate`` to the registry (cloud learning);
4. the rollout controller stages the candidate through shadow and
   canary gates and either promotes it to ``stable`` or rolls it back
   (cloud → edge model movement).

Everything is a pure function of :class:`~repro.fleet.config.FleetConfig`
(including its seed): the end-of-run :class:`FleetSummary` is
byte-identical across same-config runs, which is what the golden-trace
and property suites lock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.artifacts.trovi import TroviHub
from repro.common.clock import EventScheduler
from repro.common.rng import seed_from_name
from repro.faults.injector import FaultInjector
from repro.fleet.config import FleetConfig
from repro.fleet.dataplane import (
    CollectReport,
    FleetDataPlane,
    IngestReport,
    IngestStage,
)
from repro.fleet.registry import TAG_STABLE, ModelRegistry
from repro.fleet.rollout import (
    OUTCOME_ROLLED_BACK,
    RolloutController,
    RolloutReport,
)
from repro.fleet.trainer import IncrementalTrainer, TrainReport
from repro.fleet.world import SyntheticTrackWorld
from repro.objectstore.store import ObjectStore
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer, Tracer

__all__ = ["RoundReport", "FleetSummary", "FleetLoop"]


@dataclass(frozen=True)
class RoundReport:
    """Everything one loop round did."""

    round_no: int
    poisoned: bool
    collect: CollectReport
    ingest: IngestReport
    train: TrainReport | None
    rollout: RolloutReport | None
    stable_version: int
    promotion_latency_s: float

    def to_dict(self) -> dict:
        """JSON-ready view."""
        return {
            "round_no": self.round_no,
            "poisoned": self.poisoned,
            "collect": self.collect.to_dict(),
            "ingest": self.ingest.to_dict(),
            "train": self.train.to_dict() if self.train else None,
            "rollout": self.rollout.to_dict() if self.rollout else None,
            "stable_version": self.stable_version,
            "promotion_latency_s": self.promotion_latency_s,
        }


@dataclass(frozen=True)
class FleetSummary:
    """Deterministic end-of-run report for one continuum-loop run."""

    rounds: tuple[RoundReport, ...]
    elapsed_s: float
    records_flushed: int
    records_ingested: int
    candidates_published: int
    promotions: int
    rollbacks: int
    final_stable: int

    @property
    def mean_promotion_latency_s(self) -> float:
        """Mean collect→promote latency over rounds that promoted."""
        latencies = [
            report.promotion_latency_s
            for report in self.rounds
            if report.promotion_latency_s > 0.0
        ]
        return sum(latencies) / len(latencies) if latencies else 0.0

    def to_dict(self) -> dict:
        """JSON-ready view (golden summaries, benchmarks)."""
        return {
            "rounds": [report.to_dict() for report in self.rounds],
            "elapsed_s": self.elapsed_s,
            "records_flushed": self.records_flushed,
            "records_ingested": self.records_ingested,
            "candidates_published": self.candidates_published,
            "promotions": self.promotions,
            "rollbacks": self.rollbacks,
            "final_stable": self.final_stable,
        }

    def to_text(self) -> str:
        """Fixed-format report; byte-identical across same-seed runs."""
        lines = [
            "fleet summary",
            f"  rounds     {len(self.rounds)} over {self.elapsed_s:.3f}s simulated",
            f"  data       flushed={self.records_flushed} "
            f"ingested={self.records_ingested}",
            f"  models     published={self.candidates_published} "
            f"promotions={self.promotions} rollbacks={self.rollbacks}",
            f"  stable     v{self.final_stable:03d}",
        ]
        for report in self.rounds:
            rollout = report.rollout
            outcome = rollout.outcome if rollout else "idle"
            extra = ""
            if report.train is not None:
                extra = (
                    f" candidate=v{report.train.version:03d}"
                    f" cte={report.train.eval_cte_m:.4f}m"
                )
            if rollout is not None and rollout.outcome == OUTCOME_ROLLED_BACK:
                reasons = []
                for stage in rollout.stages:
                    reasons.extend(stage.decision.reasons)
                extra += f" reasons={'; '.join(reasons)}"
            flag = " poisoned" if report.poisoned else ""
            lines.append(
                f"  round {report.round_no:03d}  {outcome}{flag}"
                f" stable=v{report.stable_version:03d}{extra}"
            )
        return "\n".join(lines) + "\n"


class FleetLoop:
    """Wires the data plane, trainer, and rollout stages into rounds."""

    def __init__(
        self,
        config: FleetConfig,
        scheduler: EventScheduler | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics
        self.scheduler = scheduler if scheduler is not None else EventScheduler()
        self.store = ObjectStore()
        if config.store_fault_plan is not None:
            self.store.attach_resilience(
                injector=FaultInjector(
                    config.store_fault_plan,
                    seed=seed_from_name("fleet-store-faults", config.seed),
                ),
                clock=self.scheduler.clock,
                seed=seed_from_name("fleet-store-retry", config.seed),
            )
        self.world = SyntheticTrackWorld(
            frame_hw=config.frame_hw,
            seed=seed_from_name("fleet-world", config.seed),
        )
        self.hub = TroviHub(clock=self.scheduler.clock)
        self.registry = ModelRegistry(self.hub, self.store)
        self.dataplane = FleetDataPlane(
            self.store,
            self.world,
            self.scheduler,
            n_vehicles=config.n_vehicles,
            flushes_per_round=config.flushes_per_round,
            records_per_flush=config.records_per_flush,
            seed=config.seed,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.ingest = IngestStage(self.store, tracer=self.tracer, metrics=self.metrics)
        self.trainer = IncrementalTrainer(
            self.store,
            self.registry,
            self.world,
            self.scheduler,
            model_name=config.model_name,
            model_scale=config.model_scale,
            epochs=config.epochs,
            batch_size=config.batch_size,
            learning_rate=config.learning_rate,
            val_fraction=config.val_fraction,
            min_fresh_records=config.min_fresh_records,
            max_train_shards=config.max_train_shards,
            gpu=config.gpu,
            eval_records=config.eval_records,
            cte_gain_m=config.cte_gain_m,
            seed=config.seed,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.rollout = RolloutController(
            self.registry,
            self.world,
            self.scheduler,
            config,
            tracer=self.tracer,
            metrics=self.metrics,
        )

    def run(self) -> FleetSummary:
        """Run every configured round and summarise the whole loop."""
        config = self.config
        start = self.scheduler.clock.now
        reports: list[RoundReport] = []
        for round_no in range(1, config.rounds + 1):
            poisoned = round_no in config.poison_rounds
            with self.tracer.span(
                "fleet.round", round=round_no, poisoned=poisoned
            ):
                collect = self.dataplane.collect_round(
                    round_no, config.data_window_s, poisoned=poisoned
                )
                ingest = self.ingest.run(round_no)
                train: TrainReport | None = None
                rollout: RolloutReport | None = None
                latency_s = 0.0
                if self.trainer.should_train(ingest.fresh_records):
                    train = self.trainer.train_round(round_no)
                    rollout = self.rollout.run_round(round_no)
                    if rollout.new_stable == train.version:
                        latency_s = (
                            self.scheduler.clock.now - train.published_at_s
                        )
                        if self.metrics is not None:
                            self.metrics.histogram(
                                "fleet.promotion_latency_s"
                            ).observe(latency_s)
            stable = self.registry.resolve(TAG_STABLE)
            reports.append(
                RoundReport(
                    round_no=round_no,
                    poisoned=poisoned,
                    collect=collect,
                    ingest=ingest,
                    train=train,
                    rollout=rollout,
                    stable_version=stable if stable is not None else 0,
                    promotion_latency_s=latency_s,
                )
            )
            if self.metrics is not None:
                self.metrics.counter("fleet.rounds").inc()
        final_stable = self.registry.resolve(TAG_STABLE)
        return FleetSummary(
            rounds=tuple(reports),
            elapsed_s=self.scheduler.clock.now - start,
            records_flushed=sum(r.collect.flushed_records for r in reports),
            records_ingested=sum(r.ingest.fresh_records for r in reports),
            candidates_published=sum(1 for r in reports if r.train is not None),
            promotions=sum(
                1
                for r in reports
                if r.rollout is not None
                and r.rollout.new_stable == r.rollout.candidate_version
            ),
            rollbacks=sum(
                1
                for r in reports
                if r.rollout is not None
                and r.rollout.outcome == OUTCOME_ROLLED_BACK
            ),
            final_stable=final_stable if final_stable is not None else 0,
        )
