"""The model registry: TroviHub versions/tags + object-store payloads.

Checkpoints are published as versions of one hub artifact
(``fleet-autopilot``).  The hub keeps the authoritative version history
and the mutable stage tags (``candidate`` / ``canary`` / ``stable``);
the hub stores only content hashes, so the actual ``.npz`` weight
payloads live in the ``fleet-models`` object-store container, one
object per version, verified against the hub's content hash on load.
"""

from __future__ import annotations

import json

from repro.artifacts.trovi import TroviHub
from repro.common.errors import FleetError, TagNotFoundError
from repro.common.ids import content_id
from repro.ml.models.base import DonkeyModel
from repro.ml.serialize import load_model_bytes, save_model_bytes
from repro.objectstore.store import ObjectStore

__all__ = [
    "ModelRegistry",
    "MODELS_CONTAINER",
    "ARTIFACT_TITLE",
    "TAG_CANDIDATE",
    "TAG_CANARY",
    "TAG_STABLE",
]

#: Object-store container holding one ``.npz`` payload per version.
MODELS_CONTAINER = "fleet-models"
#: Title (and search handle) of the registry artifact on the hub.
ARTIFACT_TITLE = "fleet-autopilot"

TAG_CANDIDATE = "candidate"
TAG_CANARY = "canary"
TAG_STABLE = "stable"


class ModelRegistry:
    """Versioned model checkpoints with mutable stage tags."""

    def __init__(
        self, hub: TroviHub, store: ObjectStore, owner: str = "fleet-trainer"
    ) -> None:
        self.hub = hub
        self.store = store
        self.owner = owner
        self.models = store.create_container(MODELS_CONTAINER)
        self._artifact_id = ""

    @property
    def artifact_id(self) -> str:
        """Hub artifact id ("" until the first publish)."""
        return self._artifact_id

    @staticmethod
    def version_label(number: int) -> str:
        """Display/routing label for a version number (``v003``)."""
        return f"v{number:03d}"

    def _object_name(self, number: int) -> str:
        return f"{self.version_label(number)}.npz"

    # ----------------------------------------------------------- publish

    def publish(
        self, model: DonkeyModel, metrics: dict, changelog: str = ""
    ) -> int:
        """Publish a checkpoint; returns its version number.

        The new version is immediately tagged ``candidate`` — rollout
        stages move the tag forward (or drop it on rollback).
        """
        payload = save_model_bytes(model)
        files = {
            "model.npz": payload,
            "metrics.json": json.dumps(metrics, sort_keys=True).encode("utf-8"),
        }
        if not self._artifact_id:
            artifact = self.hub.publish(
                title=ARTIFACT_TITLE,
                owner=self.owner,
                files=files,
                description="continuously retrained fleet autopilot",
                tags={"autolearn", "fleet"},
            )
            self._artifact_id = artifact.artifact_id
            number = artifact.latest.number
        else:
            number = self.hub.publish_version(
                self._artifact_id, files, changelog=changelog
            ).number
        self.models.put(
            self._object_name(number),
            payload,
            content_type="application/x-npz",
            metadata={"version": str(number)},
        )
        self.models.put(
            self._metrics_name(number),
            files["metrics.json"],
            content_type="application/json",
            metadata={"version": str(number)},
        )
        self.hub.tag_version(self._artifact_id, TAG_CANDIDATE, number)
        return number

    # -------------------------------------------------------------- tags

    def tag(self, tag: str, number: int) -> None:
        """Bind (or move) a stage tag to a version."""
        self._require_artifact()
        self.hub.tag_version(self._artifact_id, tag, number)

    def untag(self, tag: str) -> int | None:
        """Drop a stage tag; returns the version it pointed at (or None)."""
        self._require_artifact()
        try:
            return self.hub.untag_version(self._artifact_id, tag)
        except TagNotFoundError:
            return None

    def resolve(self, tag: str) -> int | None:
        """Version number a stage tag points at (None when unbound)."""
        if not self._artifact_id:
            return None
        try:
            return self.hub.resolve(self._artifact_id, tag).number
        except TagNotFoundError:
            return None

    def _require_artifact(self) -> None:
        if not self._artifact_id:
            raise FleetError("registry has no published versions yet")

    # -------------------------------------------------------------- load

    def model_bytes(self, number: int) -> bytes:
        """Raw checkpoint payload, verified against the hub's hash."""
        self._require_artifact()
        version = self.hub.get(self._artifact_id).version(number)
        payload = self.models.get(self._object_name(number)).data
        metrics_name = "metrics.json"
        expected_files = tuple(sorted(["model.npz", metrics_name]))
        if version.files != expected_files:
            raise FleetError(
                f"version {number} files {version.files} != {expected_files}"
            )
        # Recompute the bundle hash the hub recorded at publish time; a
        # mismatch means the store payload is not the published bytes.
        metrics_payload = self._metrics_bytes(number)
        bundle = b"".join(
            name.encode() + b"\0" + data
            for name, data in sorted(
                {metrics_name: metrics_payload, "model.npz": payload}.items()
            )
        )
        if content_id(bundle) != version.contents_id:
            raise FleetError(
                f"checkpoint payload for version {number} fails hash check"
            )
        return payload

    def _metrics_bytes(self, number: int) -> bytes:
        return self.models.get(self._metrics_name(number)).data

    def _metrics_name(self, number: int) -> str:
        return f"{self.version_label(number)}.metrics.json"

    def load(self, number: int, compile_plans: bool = False) -> DonkeyModel:
        """Rebuild the checkpoint model for a version.

        ``compile_plans=True`` warm-compiles the inference fast path so
        rollouts can pin the version to serve replicas with no
        first-request compile cost.
        """
        return load_model_bytes(
            self.model_bytes(number), compile_plans=compile_plans
        )

    def history(self) -> list[dict]:
        """Version history, oldest first (JSON-ready)."""
        if not self._artifact_id:
            return []
        artifact = self.hub.get(self._artifact_id)
        tags_by_version: dict[int, list[str]] = {}
        for tag in sorted(artifact.version_tags):
            tags_by_version.setdefault(artifact.version_tags[tag], []).append(tag)
        return [
            {
                "version": version.number,
                "contents_id": version.contents_id,
                "published_at": version.published_at,
                "changelog": version.changelog,
                "tags": tags_by_version.get(version.number, []),
            }
            for version in artifact.versions
        ]
