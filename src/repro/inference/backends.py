"""Inference backends: where the autopilot network runs.

The model-evaluation extensions explore "the edge to cloud interaction
by attempting to run inference models in the cloud, constructing
hybrid edge cloud inference models" (§3.3); the SC'23 student poster
[26] measured exactly this tradeoff.  Experiment E6 reproduces it:

* :class:`EdgeBackend` — the network runs on the car's Pi: no network
  in the loop, but slow silicon.
* :class:`CloudBackend` — frames ship to a GPU over the continuum:
  fast silicon, but every control decision pays an RTT.
* :class:`HybridBackend` — cloud when the network is healthy, edge
  fallback when it is not (deadline or adaptive-EWMA policy).

A backend maps one frame-inference request to a latency in seconds;
:mod:`repro.inference.serving` turns latencies into (possibly stale)
control commands inside the drive loop.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.edge.devices import EdgeDevice
from repro.net.topology import Route
from repro.testbed.hardware import GPUSpec

__all__ = ["EdgeBackend", "CloudBackend", "HybridBackend"]

#: Wire size of one camera frame (JPEG-compressed 120x160x3).
FRAME_WIRE_BYTES = 4_800
#: Wire size of the (angle, throttle) response.
RESPONSE_WIRE_BYTES = 64
#: Fixed software overhead per request (serialisation, framework), s.
SOFTWARE_OVERHEAD_S = 0.002


class EdgeBackend:
    """On-device inference: latency is pure compute."""

    location = "edge"

    def __init__(self, device: EdgeDevice, flops_per_frame: float) -> None:
        if flops_per_frame <= 0:
            raise ConfigurationError("flops_per_frame must be positive")
        self.device = device
        self.flops_per_frame = float(flops_per_frame)

    def request_latency(self, rng: np.random.Generator) -> float:  # reprolint: disable=seed-ignored  (on-device latency is deterministic; rng kept for backend-interface parity)
        """Seconds from frame capture to command, on-device."""
        return (
            self.device.inference_seconds(self.flops_per_frame)
            + SOFTWARE_OVERHEAD_S
        )

    def batch_request_latency(self, rng: np.random.Generator, batch_size: int = 1) -> float:  # reprolint: disable=seed-ignored  (on-device latency is deterministic; rng kept for backend-interface parity)
        """Latency for ``batch_size`` frames: serial compute, so batching
        on the Pi amortises only the fixed software overhead."""
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        return (
            batch_size * self.device.inference_seconds(self.flops_per_frame)
            + SOFTWARE_OVERHEAD_S
        )

    @property
    def pipelined(self) -> bool:
        """The Pi runs inference synchronously: one request in flight."""
        return False


class CloudBackend:
    """Remote inference: frame upload + GPU compute + response."""

    location = "cloud"

    def __init__(
        self,
        gpu: GPUSpec,
        route: Route,
        flops_per_frame: float,
        batch_queue_s: float = 0.001,
    ) -> None:
        if flops_per_frame <= 0:
            raise ConfigurationError("flops_per_frame must be positive")
        self.gpu = gpu
        self.route = route
        self.flops_per_frame = float(flops_per_frame)
        self.batch_queue_s = float(batch_queue_s)

    def compute_latency(self) -> float:
        """GPU-side inference time for one frame."""
        return self.flops_per_frame / self.gpu.effective_flops + self.batch_queue_s

    def request_latency(self, rng: np.random.Generator) -> float:
        """Seconds from frame capture to command arriving back."""
        rtt = float(self.route.sample_rtt(rng)[0])
        upload = 8.0 * FRAME_WIRE_BYTES / self.route.bottleneck_bps
        download = 8.0 * RESPONSE_WIRE_BYTES / self.route.bottleneck_bps
        return rtt + upload + download + self.compute_latency() + SOFTWARE_OVERHEAD_S

    def batch_compute_latency(self, batch_size: int = 1) -> float:
        """GPU-side inference time for a batch: per-frame compute scales,
        the batch-formation wait is paid once."""
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        return (
            batch_size * self.flops_per_frame / self.gpu.effective_flops
            + self.batch_queue_s
        )

    def batch_request_latency(
        self, rng: np.random.Generator, batch_size: int = 1
    ) -> float:
        """End-to-end latency for ``batch_size`` frames shipped together."""
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        rtt = float(self.route.sample_rtt(rng)[0])
        upload = 8.0 * batch_size * FRAME_WIRE_BYTES / self.route.bottleneck_bps
        download = (
            8.0 * batch_size * RESPONSE_WIRE_BYTES / self.route.bottleneck_bps
        )
        return (
            rtt
            + upload
            + download
            + self.batch_compute_latency(batch_size)
            + SOFTWARE_OVERHEAD_S
        )

    @property
    def pipelined(self) -> bool:
        """Cloud requests overlap: a new frame ships every tick."""
        return True


class HybridBackend:
    """Cloud-first with edge fallback.

    Policies
    --------
    ``deadline``:
        Each request goes to the cloud; if its latency exceeds
        ``deadline_s`` the edge result (computed in parallel) is used —
        latency is ``min(cloud, max(edge, 0))`` capped by the deadline
        race.
    ``adaptive``:
        An EWMA of recent cloud latencies decides *before* each request
        whether to use the cloud at all; while on edge, the cloud is
        re-probed every ``probe_every`` requests so recovery is
        detected.
    """

    location = "hybrid"

    def __init__(
        self,
        edge: EdgeBackend,
        cloud: CloudBackend,
        policy: str = "adaptive",
        deadline_s: float = 0.05,
        ewma_alpha: float = 0.2,
        probe_every: int = 20,
    ) -> None:
        if policy not in ("deadline", "adaptive"):
            raise ConfigurationError(f"unknown hybrid policy {policy!r}")
        if deadline_s <= 0 or not 0 < ewma_alpha <= 1 or probe_every < 1:
            raise ConfigurationError("invalid hybrid parameters")
        self.edge = edge
        self.cloud = cloud
        self.policy = policy
        self.deadline_s = float(deadline_s)
        self.ewma_alpha = float(ewma_alpha)
        self.probe_every = int(probe_every)
        self._ewma: float | None = None
        self._since_probe = 0
        self.cloud_requests = 0
        self.edge_requests = 0

    def request_latency(self, rng: np.random.Generator) -> float:
        edge_latency = self.edge.request_latency(rng)
        if self.policy == "deadline":
            cloud_latency = self.cloud.request_latency(rng)
            self.cloud_requests += 1
            if cloud_latency <= self.deadline_s:
                return cloud_latency
            # Cloud missed the deadline: the edge result (racing in
            # parallel) is used as soon as it is ready.
            self.edge_requests += 1
            return max(edge_latency, min(cloud_latency, self.deadline_s))

        # adaptive: prefer the cloud unless its recent latency exceeds
        # both the control deadline and what the edge can deliver —
        # falling back to a *slower* edge would only add staleness.
        use_cloud = True
        if (
            self._ewma is not None
            and self._ewma > self.deadline_s
            and self._ewma > edge_latency
        ):
            self._since_probe += 1
            use_cloud = self._since_probe >= self.probe_every
            if use_cloud:
                self._since_probe = 0
        if use_cloud:
            cloud_latency = self.cloud.request_latency(rng)
            self.cloud_requests += 1
            self._ewma = (
                cloud_latency
                if self._ewma is None
                else (1 - self.ewma_alpha) * self._ewma
                + self.ewma_alpha * cloud_latency
            )
            if cloud_latency <= self.deadline_s or cloud_latency <= edge_latency:
                return cloud_latency
            self.edge_requests += 1
            return edge_latency
        self.edge_requests += 1
        return edge_latency

    @property
    def pipelined(self) -> bool:
        return True
