"""Driving consistency with real-time speed data (experiment E7).

Reproduces the direction of the SC'23 student poster [12] ("Road To
Reliability: Optimizing Self-Driving Consistency With Real-Time Speed
Data"): an autopilot whose throttle is open-loop produces lap times
that drift with battery level, surface patches, and model noise; a
governor that closes the loop on *measured speed* holds the pace and
collapses the lap-time variance.

:class:`SpeedGovernor` wraps any pilot part: steering passes through,
throttle is replaced by a PI controller tracking ``target_speed``
using the live speed telemetry (the "real-time speed data").
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError

__all__ = ["SpeedGovernor", "OpenLoopThrottle"]


class SpeedGovernor:
    """PI speed controller over a steering source.

    Vehicle wiring: inputs ``cam/image_array`` and ``sim/speed``,
    outputs ``pilot/angle`` and ``pilot/throttle``.
    """

    def __init__(
        self,
        steering_source,
        target_speed: float,
        kp: float = 0.9,
        ki: float = 0.35,
        dt: float = 0.05,
        throttle_limit: float = 1.0,
    ) -> None:
        if target_speed <= 0 or kp < 0 or ki < 0 or dt <= 0:
            raise ConfigurationError("invalid governor parameters")
        self.steering_source = steering_source
        self.target_speed = float(target_speed)
        self.kp, self.ki, self.dt = float(kp), float(ki), float(dt)
        self.throttle_limit = float(throttle_limit)
        self._integral = 0.0

    def run(self, image: np.ndarray | None, speed: float | None):
        """One tick: pilot steering + governed throttle."""
        angle, _pilot_throttle = self.steering_source.run(image)
        error = self.target_speed - (speed or 0.0)
        # Anti-windup: freeze the integral when saturated against it.
        raw = self.kp * error + self.ki * self._integral
        if abs(raw) < self.throttle_limit or raw * error < 0:
            self._integral += error * self.dt
        throttle = float(np.clip(raw, 0.0, self.throttle_limit))
        return float(angle), throttle

    def shutdown(self) -> None:
        """Vehicle-part lifecycle hook."""
        hook = getattr(self.steering_source, "shutdown", None)
        if callable(hook):
            hook()


class OpenLoopThrottle:
    """The baseline: pilot steering, fixed open-loop throttle with a
    slow multiplicative drift (battery sag) that the governor corrects
    for but open-loop operation cannot."""

    def __init__(
        self,
        steering_source,
        throttle: float = 0.55,
        sag_per_tick: float = 4e-5,
    ) -> None:
        if not 0 < throttle <= 1:
            raise ConfigurationError(f"throttle must be in (0, 1], got {throttle}")
        self.steering_source = steering_source
        self.throttle = float(throttle)
        self.sag_per_tick = float(sag_per_tick)
        self._ticks = 0

    def run(self, image: np.ndarray | None, speed: float | None):
        """One tick: pilot steering + sagging constant throttle."""
        angle, _ = self.steering_source.run(image)
        self._ticks += 1
        effective = self.throttle * max(0.6, 1.0 - self.sag_per_tick * self._ticks)
        return float(angle), effective

    def shutdown(self) -> None:
        """Vehicle-part lifecycle hook."""
        hook = getattr(self.steering_source, "shutdown", None)
        if callable(hook):
            hook()
