"""Edge/cloud/hybrid inference placement and consistency (E6, E7)."""

from repro.inference.backends import CloudBackend, EdgeBackend, HybridBackend
from repro.inference.consistency import OpenLoopThrottle, SpeedGovernor
from repro.inference.serving import RemotePilot, ServingStats

__all__ = [
    "EdgeBackend",
    "CloudBackend",
    "HybridBackend",
    "RemotePilot",
    "ServingStats",
    "SpeedGovernor",
    "OpenLoopThrottle",
]
