"""Serving loop: turning inference latency into control staleness.

The drive loop ticks at 20 Hz.  If a backend takes longer than one
tick to answer, the car keeps executing its *previous* command — the
command stream goes stale, corners get cut, and at some latency the
car leaves the track.  :class:`RemotePilot` models exactly that:

* Non-pipelined backends (the Pi) only admit a new request once the
  previous one completes — effective control rate = 1/latency.
* Pipelined backends (cloud) ship every frame; responses apply when
  they arrive, possibly out of date by their flight time.

The pilot wraps a real trained model: the *content* of each command is
the model's output for the frame it was computed from (an older frame
when latency is high) — so the measured on-track numbers reflect both
latency and model quality, as in the student poster [26].
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.ml.models.base import DonkeyModel

__all__ = ["RemotePilot", "ServingStats"]


@dataclass
class ServingStats:
    """Latency accounting for one drive."""

    requests: int = 0
    responses: int = 0
    stale_ticks: int = 0
    latency_sum: float = 0.0
    latency_max: float = 0.0
    ticks: int = 0
    dt: float = 0.0
    lost_responses: int = 0
    max_stale_streak: int = 0

    @property
    def mean_latency(self) -> float:
        """Mean request latency (s)."""
        return self.latency_sum / self.responses if self.responses else 0.0

    @property
    def fresh_response_ratio(self) -> float:
        """Responses delivered per request issued (a ratio in [0, 1])."""
        return self.responses / max(self.requests, 1)

    @property
    def control_rate_hz(self) -> float:
        """Deprecated alias for :attr:`fresh_response_ratio`.

        Historically misnamed: despite the ``_hz`` suffix it has always
        been the dimensionless responses/requests ratio.  Use
        :attr:`fresh_response_ratio` (same value) or
        :attr:`fresh_command_hz` (a true rate) instead.
        """
        return self.fresh_response_ratio

    @property
    def fresh_command_hz(self) -> float:
        """Fresh commands per second of drive time (a true rate in Hz).

        Requires tick accounting (``ticks`` and ``dt``); 0.0 when the
        drive has not ticked yet.
        """
        if not self.ticks or self.dt <= 0:
            return 0.0
        return self.responses / (self.ticks * self.dt)


class RemotePilot:
    """A drive-loop part: frame -> (steering, throttle) via a backend.

    Parameters
    ----------
    model:
        The trained autopilot (runs wherever the backend says).
    backend:
        Latency model (:mod:`repro.inference.backends`).
    dt:
        Control interval of the vehicle loop (s).
    safe_command:
        Command applied before the first response arrives.
    """

    def __init__(
        self,
        model: DonkeyModel,
        backend,
        dt: float = 0.05,
        rng: int | np.random.Generator | None = None,
        safe_command: tuple[float, float] = (0.0, 0.15),
    ) -> None:
        if dt <= 0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        self.model = model
        self.backend = backend
        self.dt = float(dt)
        self.rng = ensure_rng(rng)
        self.safe_command = (float(safe_command[0]), float(safe_command[1]))
        self.stats = ServingStats(dt=self.dt)
        self._now = 0.0
        self._pending: deque[tuple[float, tuple[float, float]]] = deque()
        self._last_command = self.safe_command
        model.reset_state()

    def run(self, image: np.ndarray | None) -> tuple[float, float]:
        """One vehicle-loop tick."""
        self._now += self.dt
        self.stats.ticks += 1
        if image is None:
            return self._last_command

        # Deliver every response that has arrived by now (in order),
        # *before* admitting a new request — a synchronous backend whose
        # latency is below one tick then sustains the full control rate.
        delivered = False
        while self._pending and self._pending[0][0] <= self._now:
            _, self._last_command = self._pending.popleft()
            self.stats.responses += 1
            delivered = True
        if not delivered:
            self.stats.stale_ticks += 1

        busy = self._pending and not self.backend.pipelined
        if not busy:
            latency = float(self.backend.request_latency(self.rng))
            command = self.model.run(image)
            self._pending.append((self._now + latency, command))
            self.stats.requests += 1
            self.stats.latency_sum += latency
            self.stats.latency_max = max(self.stats.latency_max, latency)
        return self._last_command

    def shutdown(self) -> None:
        """Vehicle-part lifecycle hook."""
        self.model.reset_state()
