"""``autolearn`` command-line interface.

A thin operational wrapper over the library for the common module
steps — mirroring the ``donkey`` CLI the paper's students use:

* ``autolearn tracks`` — list the registered tracks and their geometry.
* ``autolearn collect`` — drive the simulator into a tub.
* ``autolearn clean`` — run tubclean over a tub.
* ``autolearn train`` — train one of the six models on a tub.
* ``autolearn evaluate`` — drive a trained model and report qualities.
* ``autolearn pipeline`` — run a full pathway end to end.
* ``autolearn serve`` — run a fleet inference-serving experiment.
* ``autolearn chaos`` — play a fault-injection scenario against a fleet.
* ``autolearn fleet`` — run the continuous-learning continuum loop.
* ``autolearn trace`` — run a canonical scenario with tracing attached.
* ``autolearn eval`` — score declarative scenarios against goldens.
* ``autolearn lint`` — run the reprolint invariant checker.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="autolearn",
        description="AutoLearn: Learning in the Edge to Cloud Continuum",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tracks", help="list registered tracks")

    p = sub.add_parser("collect", help="collect driving data in the simulator")
    p.add_argument("tub", help="tub directory to create")
    p.add_argument("--track", default="default-tape-oval")
    p.add_argument("--records", type=int, default=2000)
    p.add_argument("--skill", type=float, default=0.9)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--camera", default="48x64")

    p = sub.add_parser("clean", help="run tubclean over a tub")
    p.add_argument("tub", help="tub directory")
    p.add_argument("--dry-run", action="store_true",
                   help="report spans without marking them")

    p = sub.add_parser("train", help="train a model on a tub")
    p.add_argument("tub", help="tub directory")
    p.add_argument("model_out", help="output .npz path")
    p.add_argument("--model", default="linear",
                   choices=["linear", "memory", "3d", "categorical",
                            "inferred", "rnn"])
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("evaluate", help="drive a trained model on a track")
    p.add_argument("model", help="trained .npz path")
    p.add_argument("--track", default="default-tape-oval")
    p.add_argument("--ticks", type=int, default=800)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("pipeline", help="run a full learning pathway")
    p.add_argument("pathway", choices=["regular", "classroom", "digital"])
    p.add_argument("--workdir", default="./autolearn-run")
    p.add_argument("--records", type=int, default=1200)
    p.add_argument("--epochs", type=int, default=6)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "serve", help="run a deterministic fleet inference-serving experiment"
    )
    p.add_argument("--vehicles", type=int, default=256,
                   help="closed-loop fleet size (20 Hz control loops)")
    p.add_argument("--rate", type=float, default=0.0,
                   help="open-loop Poisson rate in Hz (overrides --vehicles)")
    p.add_argument("--replicas", type=int, default=4)
    p.add_argument("--batch", default="adaptive",
                   choices=["single", "size", "wait", "adaptive"])
    p.add_argument("--router", default="least-outstanding",
                   choices=["round-robin", "least-outstanding", "latency-ewma"])
    p.add_argument("--queue-capacity", type=int, default=256)
    p.add_argument("--queue-policy", default="drop",
                   choices=["drop", "shed", "backpressure"])
    p.add_argument("--max-batch", type=int, default=32)
    p.add_argument("--max-wait-ms", type=float, default=8.0)
    p.add_argument("--deadline-ms", type=float, default=100.0)
    p.add_argument("--duration", type=float, default=10.0,
                   help="simulated seconds of offered load")
    p.add_argument("--gpu", default="V100",
                   help="testbed GPU spec the replicas are pinned to")
    p.add_argument("--model", default="none",
                   choices=["none", "linear", "memory", "3d", "categorical",
                            "inferred", "rnn"],
                   help="run real batched forward passes ('none' = "
                        "latency-only simulation)")
    p.add_argument("--model-flops", type=float, default=1e8,
                   help="forward-pass FLOPs per frame for the cost model")
    p.add_argument("--autoscale", action="store_true",
                   help="enable the reactive autoscaler")
    p.add_argument("--max-replicas", type=int, default=8)
    p.add_argument("--provision-delay", type=float, default=5.0,
                   help="autoscale provisioning delay in seconds")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "chaos", help="play a deterministic fault-injection scenario"
    )
    p.add_argument("--scenario", default="",
                   help="JSON scenario file (defaults to the stock plan)")
    p.add_argument("--vehicles", type=int, default=0,
                   help="override the scenario's fleet size")
    p.add_argument("--replicas", type=int, default=0,
                   help="override the scenario's replica count")
    p.add_argument("--duration", type=float, default=0.0,
                   help="override the scenario's simulated duration")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "fleet",
        help="run the fleet continuous-learning loop (collect -> retrain "
             "-> shadow/canary rollout)",
    )
    p.add_argument("--rounds", type=int, default=3)
    p.add_argument("--vehicles", type=int, default=8,
                   help="data-collection fleet size")
    p.add_argument("--stage-vehicles", type=int, default=6,
                   help="closed-loop vehicles driving each rollout stage")
    p.add_argument("--canary-fraction", type=float, default=0.3,
                   help="fraction of stage traffic sent to the canary")
    p.add_argument("--poison-round", type=int, default=0,
                   help="invert steering labels collected in this round "
                        "(the degraded candidate must roll back)")
    p.add_argument("--crash-canary-round", type=int, default=0,
                   help="crash the canary replica in this round's canary "
                        "stage (the candidate must roll back)")
    p.add_argument("--json", action="store_true",
                   help="emit the full summary as JSON")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "trace",
        help="run a canonical scenario with deterministic tracing attached",
    )
    from repro.scenarios import TRACE_SCENARIOS

    p.add_argument("scenario", choices=list(TRACE_SCENARIOS))
    p.add_argument("--out", default="./autolearn-trace",
                   help="directory for trace.json / trace.txt / metrics.json")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "eval",
        help="run declarative scenarios and diff canonical scorecards "
             "against the checked-in goldens",
    )
    from repro.eval.cli import add_eval_arguments

    add_eval_arguments(p)

    p = sub.add_parser(
        "lint", help="run reprolint, the AST-based invariant checker"
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(p)
    return parser


def _camera_hw(spec: str) -> tuple[int, int]:
    h, w = (int(v) for v in spec.split("x"))
    return h, w


def _cmd_tracks(_args) -> int:
    from repro.sim.server import AVAILABLE_TRACKS, make_track

    print(f"{'name':20s} {'length(m)':>10s} {'width(m)':>9s} {'min radius':>11s}")
    for name in sorted(AVAILABLE_TRACKS):
        track = make_track(name)
        print(f"{name:20s} {track.length:10.2f} {track.width:9.2f} "
              f"{track.minimum_radius():11.2f}")
    return 0


def _cmd_collect(args) -> int:
    from repro.core.collection import collect_via_simulator
    from repro.sim.server import make_track

    track = make_track(args.track)
    report = collect_via_simulator(
        track, args.tub, n_records=args.records, skill=args.skill,
        seed=args.seed, camera_hw=_camera_hw(args.camera),
    )
    print(f"collected {report.records} records in {report.wall_seconds:.0f} "
          f"sim-seconds ({report.laps} laps, {report.crashes} crashes) "
          f"-> {args.tub}")
    return 0


def _cmd_clean(args) -> int:
    from repro.data.tub import Tub
    from repro.data.tubclean import TubCleaner

    tub = Tub(args.tub)
    cleaner = TubCleaner(tub)
    spans = cleaner.find_bad_spans()
    for span in spans:
        print(f"  [{span.reason:8s}] records {span.start}..{span.stop - 1}")
    if args.dry_run:
        print(f"dry run: {len(spans)} bad spans found")
        return 0
    marked = cleaner.clean()
    print(f"marked {marked} records for deletion; {tub.active_count} remain")
    return 0


def _cmd_train(args) -> int:
    from repro.data.datasets import TubDataset
    from repro.data.tub import Tub
    from repro.ml import EarlyStopping, Trainer, create_model, save_model

    tub = Tub(args.tub)
    image = tub.load_image(tub.indexes()[0])
    dataset = TubDataset(tub)
    model = create_model(
        args.model, input_shape=image.shape, scale=args.scale, seed=args.seed
    )
    if model.targets == "memory":
        split = dataset.split_memory(model.mem_length, rng=args.seed)
    elif model.sequence_length > 0:
        split = dataset.split(rng=args.seed, targets=model.targets,
                              sequence_length=model.sequence_length)
    else:
        split = dataset.split(rng=args.seed, targets=model.targets,
                              flip_augment=True)
    history = Trainer(
        batch_size=64, epochs=args.epochs,
        early_stopping=EarlyStopping(patience=3), shuffle_seed=args.seed,
        verbose=True,
    ).fit(model, split)
    save_model(model, args.model_out)
    print(f"best val loss {history.best_val_loss:.4f} "
          f"after {history.epochs} epochs -> {args.model_out}")
    return 0


def _cmd_evaluate(args) -> int:
    from repro.core.evaluation import evaluate_model
    from repro.ml import load_model
    from repro.sim.renderer import CameraParams
    from repro.sim.server import make_track

    model = load_model(args.model)
    h, w, _ = model.input_shape
    report = evaluate_model(
        model, make_track(args.track), ticks=args.ticks, seed=args.seed,
        camera=CameraParams(height=h, width=w),
    )
    print(f"model:      {report.model_name}")
    print(f"laps:       {report.laps} (mean lap {report.mean_lap_time:.2f} s)")
    print(f"errors:     {report.errors}")
    print(f"mean speed: {report.mean_speed:.2f} m/s")
    print(f"mean |cte|: {report.mean_abs_cte:.3f} m")
    print(f"score:      {report.combined_score():.2f}")
    return 0


def _cmd_pipeline(args) -> int:
    from repro.core.pipeline import AutoLearnPipeline

    pipe = AutoLearnPipeline(
        args.pathway, Path(args.workdir), n_records=args.records,
        epochs=args.epochs, seed=args.seed,
    )
    report = pipe.run()
    for stage in report.stages:
        print(f"{stage.stage:12s} {stage.alternative:14s} "
              f"{stage.sim_seconds:9.1f} s  {stage.details}")
    evaluation = report.evaluation
    print(f"evaluation: laps={evaluation.laps} errors={evaluation.errors} "
          f"speed={evaluation.mean_speed:.2f} m/s")
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import (
        AutoscalePolicy,
        Autoscaler,
        BatchLatencyModel,
        InferenceService,
        PoissonWorkload,
        VehicleFleetWorkload,
    )
    from repro.testbed.hardware import GPU_SPECS

    if args.gpu not in GPU_SPECS:
        print(f"unknown GPU {args.gpu!r}; choose from {sorted(GPU_SPECS)}")
        return 2
    latency_model = BatchLatencyModel.from_gpu(
        GPU_SPECS[args.gpu], flops_per_frame=args.model_flops
    )
    model = None
    frame_shape = None
    if args.model != "none":
        from repro.ml import create_model

        frame_shape = (48, 64, 3)
        model = create_model(
            args.model, input_shape=frame_shape, scale=0.25, seed=args.seed
        )
    service = InferenceService(
        latency_model,
        model=model,
        n_replicas=args.replicas,
        router=args.router,
        batch_policy=args.batch,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        queue_capacity=args.queue_capacity,
        queue_policy=args.queue_policy,
        seed=args.seed,
    )
    deadline_s = args.deadline_ms / 1e3
    if args.rate > 0:
        workload = PoissonWorkload(
            args.rate, deadline_s=deadline_s, seed=args.seed,
            frame_shape=frame_shape,
        )
    else:
        workload = VehicleFleetWorkload(
            args.vehicles, deadline_ticks=max(1, round(deadline_s / 0.05)),
            seed=args.seed, frame_shape=frame_shape,
        )
    autoscaler = None
    if args.autoscale:
        autoscaler = Autoscaler(service, AutoscalePolicy(
            min_replicas=args.replicas, max_replicas=args.max_replicas,
            p95_target_s=deadline_s, provision_delay_s=args.provision_delay,
        ))
    summary = service.run(workload, args.duration, autoscaler=autoscaler)
    print(summary.to_text(), end="")
    return 0


def _cmd_chaos(args) -> int:
    import dataclasses
    import json

    from repro.serve import ChaosScenario, default_plan, run_chaos

    if args.scenario:
        payload = json.loads(Path(args.scenario).read_text())
        scenario = ChaosScenario.from_dict(payload)
    else:
        replicas = args.replicas or 3
        scenario = ChaosScenario(replicas=replicas, plan=default_plan(replicas))
    overrides = {}
    if args.vehicles > 0:
        overrides["vehicles"] = args.vehicles
    if args.replicas > 0:
        overrides["replicas"] = args.replicas
    if args.duration > 0:
        overrides["duration_s"] = args.duration
    if overrides:
        scenario = dataclasses.replace(scenario, **overrides)
    summary = run_chaos(scenario, seed=args.seed)
    print(summary.to_text(), end="")
    return 0


def _cmd_fleet(args) -> int:
    import json

    from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
    from repro.fleet import FleetConfig, FleetLoop

    canary_fault_plans = ()
    if args.crash_canary_round > 0:
        # The canary replica is the one added after the stable replicas;
        # with the default two stable replicas that is replica-0003.
        stable = FleetConfig().stable_replicas
        crash = FaultPlan([
            FaultSpec(
                FaultKind.REPLICA_CRASH,
                f"replica-{stable + 1:04d}",
                at_s=0.1,
            ),
        ])
        canary_fault_plans = ((args.crash_canary_round, crash),)
    config = FleetConfig(
        rounds=args.rounds,
        n_vehicles=args.vehicles,
        stage_vehicles=args.stage_vehicles,
        canary_fraction=args.canary_fraction,
        poison_rounds=(args.poison_round,) if args.poison_round > 0 else (),
        canary_fault_plans=canary_fault_plans,
        seed=args.seed,
    )
    summary = FleetLoop(config).run()
    if args.json:
        print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
    else:
        print(summary.to_text(), end="")
    return 0


def _cmd_trace(args) -> int:
    from repro.obs.export import chrome_trace, text_tree
    from repro.scenarios import run_trace_scenario

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    result = run_trace_scenario(
        args.scenario, seed=args.seed, work_dir=out / "work"
    )
    (out / "trace.json").write_text(chrome_trace(result.tracer))
    (out / "trace.txt").write_text(text_tree(result.tracer))
    (out / "metrics.json").write_text(result.metrics.to_json())
    print(result.summary, end="")
    print(f"spans={len(result.tracer.spans)} "
          f"events={len(result.tracer.events)} -> {out}")
    return 0


def _cmd_eval(args) -> int:
    from repro.eval.cli import run_eval_command

    return run_eval_command(args)


def _cmd_lint(args) -> int:
    from repro.analysis.cli import run_lint_command

    return run_lint_command(args)


_COMMANDS = {
    "tracks": _cmd_tracks,
    "collect": _cmd_collect,
    "clean": _cmd_clean,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "pipeline": _cmd_pipeline,
    "serve": _cmd_serve,
    "chaos": _cmd_chaos,
    "fleet": _cmd_fleet,
    "trace": _cmd_trace,
    "eval": _cmd_eval,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
