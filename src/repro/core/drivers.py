"""Scripted drivers: the synthetic students.

The paper's data comes from humans steering with a joystick or the web
UI.  The reproduction replaces them with scripted drivers of calibrated
skill:

* :class:`PurePursuitDriver` — a clean racing-line expert (the
  instructor demo lap).
* :class:`StudentDriver` — the expert plus human imperfection: reaction
  noise, over/under-steer bias, and occasional *distraction events*
  that wander the car off line — producing exactly the crash/off-side
  records tubclean exists to remove (paper §3.3, experiment E8).
* :class:`ReplayDriver` — replays recorded commands (digital-twin
  experiments re-drive a real session in the simulator).

Drivers are callables ``(image, cte, speed) -> (steering, throttle)``
(the controller-part interface).  The scripted "human" also sees the
car pose directly through the session — a stand-in for the human's
out-of-frame situational awareness.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.sim.session import DrivingSession

__all__ = ["PurePursuitDriver", "StudentDriver", "ReplayDriver"]


class PurePursuitDriver:
    """Geometric path tracker with curvature-aware speed control."""

    def __init__(
        self,
        session: DrivingSession,
        target_speed: float = 1.6,
        lookahead_base: float = 0.45,
        lookahead_gain: float = 0.35,
        lateral_accel_limit: float = 2.2,
        throttle_gain: float = 0.8,
    ) -> None:
        if target_speed <= 0:
            raise ConfigurationError(f"target_speed must be positive: {target_speed}")
        self.session = session
        self.track = session.track
        self.target_speed = float(target_speed)
        self.lookahead_base = float(lookahead_base)
        self.lookahead_gain = float(lookahead_gain)
        self.lateral_accel_limit = float(lateral_accel_limit)
        self.throttle_gain = float(throttle_gain)
        self._max_angle = session.model.params.max_steering_angle
        self._wheelbase = session.model.params.wheelbase

    # ------------------------------------------------------------ core

    def steer_to(self, s_now: float) -> float:
        """Pure-pursuit steering command toward a lookahead point."""
        state = self.session.state
        lookahead = self.lookahead_base + self.lookahead_gain * state.speed
        target = self.track.point_at(s_now + lookahead)
        dx = target[0] - state.x
        dy = target[1] - state.y
        # Angle to target in the car frame.
        alpha = np.arctan2(dy, dx) - state.heading
        alpha = np.arctan2(np.sin(alpha), np.cos(alpha))
        distance = max(np.hypot(dx, dy), 1e-6)
        wheel_angle = np.arctan2(2.0 * self._wheelbase * np.sin(alpha), distance)
        return float(np.clip(wheel_angle / self._max_angle, -1.0, 1.0))

    def speed_target(self, s_now: float, horizon: float = 1.2) -> float:
        """Curvature-limited speed over the next ``horizon`` metres."""
        curvatures = [
            abs(self.track.curvature_at(s_now + d))
            for d in np.linspace(0.0, horizon, 4)
        ]
        kappa = max(max(curvatures), 1e-6)
        v_curve = np.sqrt(self.lateral_accel_limit / kappa)
        return float(min(self.target_speed, v_curve))

    def throttle_to(self, target_speed: float, speed: float) -> float:
        """Proportional speed controller."""
        return float(np.clip(self.throttle_gain * (target_speed - speed) + 0.25, 0.0, 1.0))

    def __call__(
        self, image: np.ndarray, cte: float, speed: float
    ) -> tuple[float, float]:
        query = self.track.query(
            np.array([[self.session.state.x, self.session.state.y]])
        )
        s_now = float(query.arclength[0])
        steering = self.steer_to(s_now)
        throttle = self.throttle_to(self.speed_target(s_now), speed)
        return steering, throttle


class StudentDriver:
    """A human-skill wrapper around the expert.

    Parameters
    ----------
    skill:
        1.0 = expert-clean; 0.0 = maximally sloppy.  Controls noise
        magnitude, reaction smoothing, and distraction frequency.
    distraction_rate:
        Expected distraction events per 1000 ticks at skill 0.5; each
        event holds a wrong steering offset for a short burst (the
        paper's crashes / off-side images).
    """

    def __init__(
        self,
        expert: PurePursuitDriver,
        skill: float = 0.7,
        rng: int | np.random.Generator | None = None,
        distraction_rate: float = 6.0,
    ) -> None:
        if not 0.0 <= skill <= 1.0:
            raise ConfigurationError(f"skill must be in [0, 1], got {skill}")
        self.expert = expert
        self.skill = float(skill)
        self.rng = ensure_rng(rng)
        sloppiness = 1.0 - self.skill
        self.noise_sigma = 0.02 + 0.18 * sloppiness
        self.lag = 0.25 + 0.45 * sloppiness  # EMA smoothing factor
        self.distraction_p = distraction_rate * (0.4 + 1.2 * sloppiness) / 1000.0
        self._last_steering = 0.0
        self._distraction_ticks = 0
        self._distraction_offset = 0.0

    def __call__(
        self, image: np.ndarray, cte: float, speed: float
    ) -> tuple[float, float]:
        steering, throttle = self.expert(image, cte, speed)

        # Reaction lag: humans smooth their corrections.
        steering = (1 - self.lag) * steering + self.lag * self._last_steering
        # Hand noise.
        steering += self.rng.normal(0.0, self.noise_sigma)
        throttle += self.rng.normal(0.0, 0.5 * self.noise_sigma)

        # Distraction events: hold a wrong offset for a burst.  Sloppier
        # drivers stay distracted longer — their tubs carry sustained
        # wrong-label stretches, the data tubclean exists to remove.
        if self._distraction_ticks > 0:
            steering += self._distraction_offset
            self._distraction_ticks -= 1
        elif self.rng.random() < self.distraction_p:
            max_burst = 18 + int(45 * (1.0 - self.skill))
            self._distraction_ticks = int(self.rng.integers(6, max_burst))
            self._distraction_offset = float(
                self.rng.choice([-1.0, 1.0]) * self.rng.uniform(0.3, 0.8)
            )

        steering = float(np.clip(steering, -1.0, 1.0))
        throttle = float(np.clip(throttle, 0.0, 1.0))
        self._last_steering = steering
        return steering, throttle


class ReplayDriver:
    """Replays a fixed command sequence (loops when exhausted)."""

    def __init__(self, commands: Sequence[tuple[float, float]]) -> None:
        if not commands:
            raise ConfigurationError("replay needs at least one command")
        self.commands = [(float(a), float(t)) for a, t in commands]
        self._i = 0

    def __call__(
        self, image: np.ndarray, cte: float, speed: float
    ) -> tuple[float, float]:
        command = self.commands[self._i % len(self.commands)]
        self._i += 1
        return command
