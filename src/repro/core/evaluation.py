"""Model evaluation on track (paper §3.3, experiment E1).

"Students can ... download the trained models onto them for inference,
and drive them around the track measuring qualities of interest
(speed, number of errors, etc.)".  :func:`evaluate_model` runs a
trained model closed-loop and reports exactly those qualities; the E1
benchmark ranks the six models by the combined speed+accuracy score
under which the paper found the inferred model best.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.ml.models.base import DonkeyModel
from repro.sim.renderer import CameraParams
from repro.sim.session import DrivingSession
from repro.sim.tracks import Track
from repro.vehicle.builder import build_autopilot_vehicle

__all__ = ["EvaluationReport", "evaluate_model"]


@dataclass(frozen=True)
class EvaluationReport:
    """On-track qualities of one model."""

    model_name: str
    ticks: int
    sim_seconds: float
    laps: int
    mean_lap_time: float
    lap_time_std: float
    mean_speed: float
    errors: int  # off-track excursions ("number of errors")
    mean_abs_cte: float
    distance: float

    @property
    def errors_per_lap(self) -> float:
        """Errors normalised by completed laps (inf if no lap)."""
        return self.errors / self.laps if self.laps else float("inf")

    def combined_score(self, error_weight: float = 0.15) -> float:
        """Speed-and-accuracy score (higher is better).

        Mean speed (m/s) discounted by ``error_weight`` per
        error-per-minute — a scalarisation of the paper's informal
        criterion "speed fast, while still being accurate".  The E1
        benchmark reports the ranking's sensitivity to this weight.
        """
        minutes = self.sim_seconds / 60.0 if self.sim_seconds else 1.0
        return self.mean_speed - error_weight * (self.errors / minutes)


def evaluate_model(
    model: DonkeyModel,
    track: Track,
    ticks: int = 1200,
    seed: int | np.random.Generator | None = None,
    camera: CameraParams | None = None,
    mode: str = "pilot",
    user_throttle: float = 0.5,
) -> EvaluationReport:
    """Drive ``model`` for ``ticks`` control intervals and score it."""
    if ticks <= 0:
        raise ConfigurationError(f"ticks must be positive, got {ticks}")
    session = DrivingSession(track, camera=camera, seed=seed)
    vehicle = build_autopilot_vehicle(
        session, model, mode=mode, user_throttle=user_throttle
    )
    vehicle.start(max_loop_count=ticks)
    stats = session.stats
    return EvaluationReport(
        model_name=model.name,
        ticks=stats.steps,
        sim_seconds=session.time,
        laps=stats.laps_completed,
        mean_lap_time=stats.mean_lap_time,
        lap_time_std=stats.lap_time_std,
        mean_speed=stats.mean_speed,
        errors=stats.crashes,
        mean_abs_cte=stats.mean_abs_cte,
        distance=stats.distance,
    )
