"""The three data-collection paths (paper Fig. 2, experiment F2).

"AutoLearn provides three different data collection paths.  Sample
datasets, data collected through the Unity game platform via
simulation, and through the real physical car."

* :func:`collect_sample_dataset` — download a pre-packaged tub from the
  object store (no driving).
* :func:`collect_via_simulator` — drive the simulator on a laptop.
* :func:`collect_via_physical_car` — drive the real car: the camera
  and controls ride the classroom Wi-Fi (web controller latency), data
  lands on the Pi and is rsync'd to the cloud afterwards.

Every path produces a :class:`CollectionReport` with the tub and the
simulated time each step took, so F2 can compare rates and content.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import seed_from_name
from repro.core.drivers import PurePursuitDriver, StudentDriver
from repro.data.tub import Tub
from repro.net.topology import Route
from repro.net.transfer import TransferResult, rsync_tub
from repro.objectstore.store import ObjectStore
from repro.sim.session import DrivingSession
from repro.sim.tracks import Track
from repro.vehicle.builder import build_recording_vehicle

__all__ = [
    "CollectionReport",
    "collect_sample_dataset",
    "collect_via_simulator",
    "collect_via_physical_car",
    "generate_sample_datasets",
]


@dataclass(frozen=True)
class CollectionReport:
    """Outcome of one collection run."""

    path: str  # "sample" | "simulator" | "physical"
    tub: Tub
    records: int
    wall_seconds: float  # simulated time the student spent
    laps: int = 0
    crashes: int = 0
    transfer: TransferResult | None = None

    @property
    def records_per_minute(self) -> float:
        """Collection rate in records per simulated minute."""
        return 60.0 * self.records / self.wall_seconds if self.wall_seconds else 0.0


def _drive_and_record(
    track: Track,
    tub_path: str | Path,
    n_records: int,
    skill: float,
    seed: int,
    controller: str,
    camera_hw: tuple[int, int] | None,
    constant_throttle: float | None = None,
) -> tuple[Tub, DrivingSession]:
    from repro.sim.renderer import CameraParams

    camera = (
        CameraParams(height=camera_hw[0], width=camera_hw[1]) if camera_hw else None
    )
    session = DrivingSession(track, camera=camera, seed=seed)
    expert = PurePursuitDriver(session)
    driver = (
        expert
        if skill >= 1.0
        else StudentDriver(expert, skill=skill, rng=seed + 1)
    )
    tub = Tub.create(
        tub_path,
        metadata={
            "track": track.name,
            "track_half_width": track.half_width,
            "skill": skill,
        },
    )
    vehicle = build_recording_vehicle(
        session, driver, tub, controller=controller,
        constant_throttle=constant_throttle,
    )
    vehicle.start(max_loop_count=n_records)
    return tub, session


def collect_via_simulator(
    track: Track,
    tub_path: str | Path,
    n_records: int = 2000,
    skill: float = 0.85,
    seed: int | None = None,
    camera_hw: tuple[int, int] | None = None,
) -> CollectionReport:
    """Fig. 2 middle path: the DonkeyCar simulator on a laptop.

    The simulator uses the joystick-latency controller (local input)
    and runs at the standard 20 Hz.
    """
    if n_records <= 0:
        raise ConfigurationError("n_records must be positive")
    seed = seed_from_name(f"sim-{track.name}") % 2**31 if seed is None else seed
    tub, session = _drive_and_record(
        track, tub_path, n_records, skill, seed, "joystick", camera_hw
    )
    return CollectionReport(
        path="simulator",
        tub=tub,
        records=len(tub),
        wall_seconds=session.time,
        laps=session.stats.laps_completed,
        crashes=session.stats.crashes,
    )


def collect_via_physical_car(
    track: Track,
    tub_path: str | Path,
    route_to_cloud: Route,
    n_records: int = 2000,
    skill: float = 0.7,
    seed: int | None = None,
    camera_hw: tuple[int, int] | None = None,
    constant_throttle: float | None = None,
) -> CollectionReport:
    """Fig. 2 right path: the real car on a real track.

    Differences from the simulator path, all faithful to §3.3:
    students drive through the **web controller** (two ticks of input
    latency over Wi-Fi), their skill is typically lower on the physical
    car, and the tub must be **rsync'd to the cloud** afterwards —
    the transfer time is part of the report.
    """
    if n_records <= 0:
        raise ConfigurationError("n_records must be positive")
    seed = seed_from_name(f"car-{track.name}") % 2**31 if seed is None else seed
    tub, session = _drive_and_record(
        track, tub_path, n_records, skill, seed, "web", camera_hw,
        constant_throttle=constant_throttle,
    )
    transfer = rsync_tub(tub, route_to_cloud, rng=seed + 7)
    return CollectionReport(
        path="physical",
        tub=tub,
        records=len(tub),
        wall_seconds=session.time + transfer.seconds,
        laps=session.stats.laps_completed,
        crashes=session.stats.crashes,
        transfer=transfer,
    )


def generate_sample_datasets(
    store: ObjectStore,
    tracks: list[Track],
    work_dir: str | Path,
    n_records: int = 2000,
    camera_hw: tuple[int, int] | None = None,
) -> dict[str, int]:
    """Produce and publish the packaged sample datasets.

    "The sample datasets were collected by manually driving the car
    around a track, and through the DonkeyCar simulator" (§3.3) — one
    expert-driven tub per track, archived into the object store
    container ``sample-datasets``.  Returns name -> record count.
    """
    import io
    import tarfile

    work_dir = Path(work_dir)
    container = store.create_container("sample-datasets")
    published: dict[str, int] = {}
    for track in tracks:
        report = collect_via_simulator(
            track,
            work_dir / f"sample-{track.name}",
            n_records=n_records,
            skill=1.0,
            camera_hw=camera_hw,
        )
        buf = io.BytesIO()
        with tarfile.open(fileobj=buf, mode="w") as tar:
            tar.add(report.tub.path, arcname=f"sample-{track.name}")
        container.put(
            f"sample-{track.name}.tar",
            buf.getvalue(),
            content_type="application/x-tar",
            metadata={"track": track.name, "records": str(report.records)},
        )
        published[track.name] = report.records
    return published


def collect_sample_dataset(
    store: ObjectStore,
    track_name: str,
    dest_dir: str | Path,
    route: Route | None = None,
) -> CollectionReport:
    """Fig. 2 left path: download a packaged sample dataset.

    No driving: the student fetches the tarball (over ``route`` if
    given, charging download time) and unpacks it locally.
    """
    import io
    import tarfile

    container = store.container("sample-datasets")
    obj = container.get(f"sample-{track_name}.tar")
    seconds = 0.0
    if route is not None:
        seconds = route.transfer_time(obj.size)
    dest_dir = Path(dest_dir)
    with tarfile.open(fileobj=io.BytesIO(obj.data)) as tar:
        tar.extractall(dest_dir, filter="data")
    tub = Tub(dest_dir / f"sample-{track_name}")
    return CollectionReport(
        path="sample",
        tub=tub,
        records=len(tub),
        wall_seconds=seconds,
    )
