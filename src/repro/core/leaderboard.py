"""Class competitions (paper §3.3).

"Students might also compete to train models yielding a combination of
fastest speed with fewest errors, or accuracy following tracks of
different shapes."

:class:`Leaderboard` collects :class:`~repro.core.evaluation.EvaluationReport`
entries per student/model and ranks them under the named criteria the
paper suggests; multi-track entries aggregate for the
"tracks of different shapes" competition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.core.evaluation import EvaluationReport

__all__ = ["Entry", "Leaderboard", "CRITERIA"]


@dataclass(frozen=True)
class Entry:
    """One submission: who, with what, measured where."""

    student: str
    model_name: str
    track: str
    report: EvaluationReport


def _speed_and_errors(entry: Entry) -> float:
    return entry.report.combined_score()


def _fastest_lap(entry: Entry) -> float:
    lap = entry.report.mean_lap_time
    return -lap if lap > 0 else float("-inf")  # no lap = last place


def _fewest_errors(entry: Entry) -> float:
    return -float(entry.report.errors)


def _accuracy(entry: Entry) -> float:
    return -entry.report.mean_abs_cte


#: Ranking criteria (higher key = better rank).
CRITERIA = {
    "speed-and-errors": _speed_and_errors,
    "fastest-lap": _fastest_lap,
    "fewest-errors": _fewest_errors,
    "accuracy": _accuracy,
}


class Leaderboard:
    """Submissions and rankings for one class competition."""

    def __init__(self, name: str = "race-day") -> None:
        self.name = name
        self._entries: list[Entry] = []

    def submit(
        self, student: str, model_name: str, track: str, report: EvaluationReport
    ) -> Entry:
        """Record a submission (later submissions by the same student on
        the same track replace earlier ones — best-effort resubmission)."""
        entry = Entry(student, model_name, track, report)
        self._entries = [
            e for e in self._entries
            if not (e.student == student and e.track == track)
        ]
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self, track: str | None = None) -> list[Entry]:
        """All entries, optionally filtered to one track."""
        if track is None:
            return list(self._entries)
        return [e for e in self._entries if e.track == track]

    def rank(self, criterion: str = "speed-and-errors",
             track: str | None = None) -> list[Entry]:
        """Entries ordered best first under a named criterion."""
        try:
            key = CRITERIA[criterion]
        except KeyError:
            raise ConfigurationError(
                f"unknown criterion {criterion!r}; known: {sorted(CRITERIA)}"
            ) from None
        return sorted(self.entries(track), key=key, reverse=True)

    def winner(self, criterion: str = "speed-and-errors",
               track: str | None = None) -> Entry:
        """The top entry under a criterion."""
        ranked = self.rank(criterion, track)
        if not ranked:
            raise ConfigurationError("no submissions yet")
        return ranked[0]

    def multi_track_standings(self, criterion: str = "accuracy") -> list[tuple[str, float]]:
        """Aggregate standings across track shapes.

        Students are scored by their mean per-track rank points (first
        place = 1.0, last = 0.0); only students who entered every track
        qualify — the "accuracy following tracks of different shapes"
        competition.
        """
        tracks = sorted({e.track for e in self._entries})
        if not tracks:
            return []
        points: dict[str, list[float]] = {}
        for track in tracks:
            ranked = self.rank(criterion, track)
            n = len(ranked)
            for position, entry in enumerate(ranked):
                score = 1.0 if n == 1 else 1.0 - position / (n - 1)
                points.setdefault(entry.student, []).append(score)
        qualified = {
            student: scores for student, scores in points.items()
            if len(scores) == len(tracks)
        }
        standings = [
            (student, sum(scores) / len(scores))
            for student, scores in qualified.items()
        ]
        return sorted(standings, key=lambda item: item[1], reverse=True)

    def table(self, criterion: str = "speed-and-errors") -> str:
        """Printable standings table."""
        lines = [
            f"{self.name} — criterion: {criterion}",
            f"{'#':>2s} {'student':12s} {'model':12s} {'track':18s} "
            f"{'laps':>5s} {'errors':>7s} {'speed':>7s} {'score':>7s}",
        ]
        for position, entry in enumerate(self.rank(criterion), start=1):
            r = entry.report
            lines.append(
                f"{position:2d} {entry.student:12s} {entry.model_name:12s} "
                f"{entry.track:18s} {r.laps:5d} {r.errors:7d} "
                f"{r.mean_speed:7.2f} {r.combined_score():7.2f}"
            )
        return "\n".join(lines)
