"""AutoLearn core: drivers, collection paths, pipeline, pathways, evaluation."""

from repro.core.collection import (
    CollectionReport,
    collect_sample_dataset,
    collect_via_physical_car,
    collect_via_simulator,
    generate_sample_datasets,
)
from repro.core.drivers import PurePursuitDriver, ReplayDriver, StudentDriver
from repro.core.evaluation import EvaluationReport, evaluate_model
from repro.core.pathways import (
    ASSIGNMENTS,
    PATHWAYS,
    Assignment,
    LearningPathway,
    assignments_for_level,
    pathway,
)
from repro.core.leaderboard import CRITERIA, Entry, Leaderboard
from repro.core.pipeline import AutoLearnPipeline, PipelineReport, StageReport

__all__ = [
    "Leaderboard",
    "Entry",
    "CRITERIA",
    "PurePursuitDriver",
    "StudentDriver",
    "ReplayDriver",
    "CollectionReport",
    "collect_sample_dataset",
    "collect_via_simulator",
    "collect_via_physical_car",
    "generate_sample_datasets",
    "EvaluationReport",
    "evaluate_model",
    "LearningPathway",
    "PATHWAYS",
    "pathway",
    "Assignment",
    "ASSIGNMENTS",
    "assignments_for_level",
    "AutoLearnPipeline",
    "PipelineReport",
    "StageReport",
]
