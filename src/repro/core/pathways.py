"""Learning pathways and assignments (paper §3.4, §4, Fig. 1).

"Our contributions are tangible through an exhaustive digital content
freely available that can be followed in three different pathways,
i.e. regular, classroom, and digital path" (§4); each of the three
pipeline phases (data collection, model training, model evaluation)
"has multiple alternatives that can be used to customize the student's
learning pathway" (§3.4).

A :class:`LearningPathway` pins one alternative per phase; the
assignment catalog encodes the beginner-to-advanced extensions §3.3
proposes (new tracks, model comparisons, GPS following, edge/cloud
inference, RL, digital twins).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError

__all__ = [
    "PhaseAlternatives",
    "LearningPathway",
    "PATHWAYS",
    "pathway",
    "Assignment",
    "ASSIGNMENTS",
    "assignments_for_level",
]

#: Valid alternatives per phase (Fig. 1 columns).
PhaseAlternatives = {
    "collection": ("sample", "simulator", "physical"),
    "training": ("pretrained", "cloud-gpu", "local"),
    "evaluation": ("simulator", "physical", "twin"),
}


@dataclass(frozen=True)
class LearningPathway:
    """One route through the module's three phases."""

    name: str
    collection: str
    training: str
    evaluation: str
    audience: str
    needs_car: bool
    needs_testbed: bool
    description: str = ""

    def __post_init__(self) -> None:
        for phase in ("collection", "training", "evaluation"):
            value = getattr(self, phase)
            if value not in PhaseAlternatives[phase]:
                raise ConfigurationError(
                    f"{phase} alternative {value!r} not in "
                    f"{PhaseAlternatives[phase]}"
                )

    @property
    def stages(self) -> tuple[str, str, str]:
        """(collection, training, evaluation) alternatives."""
        return (self.collection, self.training, self.evaluation)


#: The three published pathways.
PATHWAYS: dict[str, LearningPathway] = {
    p.name: p
    for p in [
        LearningPathway(
            name="regular",
            collection="physical",
            training="cloud-gpu",
            evaluation="physical",
            audience="student",
            needs_car=True,
            needs_testbed=True,
            description=(
                "The full loop: drive the real car, train on a Chameleon "
                "GPU node, evaluate on the track via CHI@Edge."
            ),
        ),
        LearningPathway(
            name="classroom",
            collection="sample",
            training="cloud-gpu",
            evaluation="simulator",
            audience="student",
            needs_car=False,
            needs_testbed=True,
            description=(
                "A course without hardware: packaged sample datasets, "
                "cloud training, simulator evaluation — the ML-course "
                "emphasis of §3.4."
            ),
        ),
        LearningPathway(
            name="digital",
            collection="simulator",
            training="local",
            evaluation="simulator",
            audience="self-learner",
            needs_car=False,
            needs_testbed=False,
            description=(
                "Fully self-contained for self-learners: simulator data, "
                "laptop training, simulator evaluation."
            ),
        ),
    ]
}


def pathway(name: str) -> LearningPathway:
    """Look up a pathway by name."""
    try:
        return PATHWAYS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown pathway {name!r}; available: {sorted(PATHWAYS)}"
        ) from None


@dataclass(frozen=True)
class Assignment:
    """One exercise from the extensions catalog (§3.3, §3.4)."""

    key: str
    title: str
    level: str  # beginner | intermediate | advanced
    phase: str  # collection | training | evaluation
    description: str
    modules: tuple[str, ...] = field(default=())


ASSIGNMENTS: tuple[Assignment, ...] = (
    Assignment(
        "new-track", "Collect a dataset on a modified track", "beginner",
        "collection",
        "Modify the shape of the track, vary the car configuration or "
        "driving conditions, and study the effect of different datasets "
        "on different training models.",
        ("repro.sim.tracks", "repro.core.collection"),
    ),
    Assignment(
        "tubclean", "Clean a noisy driving session", "beginner", "collection",
        "Use the tubclean workflow to find and delete crashes and "
        "off-side images; retrain and compare.",
        ("repro.data.tubclean",),
    ),
    Assignment(
        "model-comparison", "Compare the six models", "intermediate",
        "training",
        "Train linear, memory, 3D, categorical, inferred, and RNN on the "
        "same tub; rank them by speed and accuracy on track.",
        ("repro.ml.models", "repro.core.evaluation"),
    ),
    Assignment(
        "race", "Steer-only race with constant throttle", "intermediate",
        "evaluation",
        "Fastest speed with fewest errors; the pilot steers while "
        "throttle is held constant.",
        ("repro.vehicle", "repro.core.evaluation"),
    ),
    Assignment(
        "gps-path", "Record a GPS path and follow it", "intermediate",
        "evaluation",
        "Record a path with GPS and have the car follow that path.",
        ("repro.extensions.gps",),
    ),
    Assignment(
        "vision", "Classical vision: stop/go, line following, obstacles",
        "intermediate", "evaluation",
        "Camera identifies the color of an object placed in front of it "
        "(red means stop, green means go); edge detection keeps the car "
        "following the track line.",
        ("repro.extensions.vision",),
    ),
    Assignment(
        "edge-cloud-inference", "In-situ versus in-the-cloud inference",
        "advanced", "evaluation",
        "Run inference on the Pi, in the cloud, and hybrid; measure "
        "latency and on-track behaviour across network conditions.",
        ("repro.inference",),
    ),
    Assignment(
        "reinforcement-learning", "Reinforcement learning in the simulator",
        "advanced", "training",
        "Train a driving policy from reward instead of demonstrations.",
        ("repro.extensions.rl",),
    ),
    Assignment(
        "digital-twin", "Digital twin: simulation versus reality",
        "advanced", "evaluation",
        "Compare the simulation output with real-life model evaluation "
        "and quantify the twin gap.",
        ("repro.twin",),
    ),
)


def assignments_for_level(level: str) -> list[Assignment]:
    """Assignments filtered by difficulty."""
    if level not in ("beginner", "intermediate", "advanced"):
        raise ConfigurationError(f"unknown level {level!r}")
    return [a for a in ASSIGNMENTS if a.level == level]
