"""The AutoLearn pipeline: Fig. 1 as an executable object.

Runs the complete loop — data collection -> cleaning -> transfer ->
training -> deployment -> evaluation — with the alternatives selected
by a :class:`~repro.core.pathways.LearningPathway`, over the full
substrate stack (simulator, tubs, Chameleon, CHI@Edge, network,
object store).  Every stage contributes a :class:`StageReport` with
the simulated time a student would spend in it; the F1 benchmark
prints the resulting per-stage table for all three pathways.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.common.errors import ConfigurationError, ObjectStoreError
from repro.core.collection import (
    CollectionReport,
    collect_sample_dataset,
    collect_via_physical_car,
    collect_via_simulator,
    generate_sample_datasets,
)
from repro.core.evaluation import EvaluationReport, evaluate_model
from repro.core.pathways import LearningPathway, pathway as lookup_pathway
from repro.data.datasets import TubDataset
from repro.data.tubclean import TubCleaner
from repro.edge.byod import CHIEdge
from repro.ml.models.factory import create_model
from repro.ml.serialize import save_model_bytes
from repro.ml.training import EarlyStopping, Trainer, estimate_flops_per_sample
from repro.net.topology import Topology, autolearn_topology
from repro.net.transfer import scp_bytes
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer, Tracer
from repro.sim.renderer import CameraParams
from repro.sim.tracks import Track, default_tape_oval
from repro.testbed.chameleon import Chameleon
from repro.testbed.compute import TrainingJob

__all__ = ["StageReport", "PipelineReport", "AutoLearnPipeline"]

#: Student-laptop sustained FLOP/s (the "local" training alternative).
LAPTOP_FLOPS = 1.5e11


@dataclass(frozen=True)
class StageReport:
    """One pipeline stage's outcome."""

    stage: str
    alternative: str
    sim_seconds: float
    details: dict[str, Any] = field(default_factory=dict)


@dataclass
class PipelineReport:
    """Full pipeline outcome (the F1 payload)."""

    pathway: str
    stages: list[StageReport] = field(default_factory=list)
    evaluation: EvaluationReport | None = None

    @property
    def total_sim_seconds(self) -> float:
        """End-to-end simulated student time."""
        return sum(s.sim_seconds for s in self.stages)

    def stage(self, name: str) -> StageReport:
        """Fetch a stage by name."""
        for s in self.stages:
            if s.stage == name:
                return s
        raise KeyError(name)


class AutoLearnPipeline:
    """Executable Fig. 1 for one student and one pathway."""

    def __init__(
        self,
        pathway: str | LearningPathway,
        work_dir: str | Path,
        track: Track | None = None,
        model_name: str = "linear",
        n_records: int = 1500,
        epochs: int = 6,
        camera_hw: tuple[int, int] = (60, 80),
        model_scale: float = 0.5,
        seed: int = 0,
        chameleon: Chameleon | None = None,
        topology: Topology | None = None,
        gpu_node_type: str = "gpu_v100",
        eval_ticks: int = 800,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.pathway = (
            pathway if isinstance(pathway, LearningPathway) else lookup_pathway(pathway)
        )
        self.work_dir = Path(work_dir)
        self.work_dir.mkdir(parents=True, exist_ok=True)
        self.track = track if track is not None else default_tape_oval()
        self.model_name = model_name
        self.n_records = int(n_records)
        self.epochs = int(epochs)
        self.camera_hw = camera_hw
        self.model_scale = float(model_scale)
        self.seed = int(seed)
        self.gpu_node_type = gpu_node_type
        self.eval_ticks = int(eval_ticks)
        self.chameleon = chameleon if chameleon is not None else Chameleon()
        self.topology = topology if topology is not None else autolearn_topology()
        self.edge_service = CHIEdge(self.chameleon.scheduler, self.chameleon.identity)
        self.model = None
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics
        if self.tracer.enabled:
            self.chameleon.object_store.attach_tracer(self.tracer)

    # ------------------------------------------------------------- run

    def run(self, student: str = "student01") -> PipelineReport:
        """Execute every stage for one student; returns the report."""
        report = PipelineReport(pathway=self.pathway.name)
        with self.tracer.span(
            "pipeline.run",
            pathway=self.pathway.name,
            student=student,
            seed=self.seed,
        ):
            with self.tracer.span(
                "pipeline.setup", alternative=self.pathway.name
            ):
                session = self._setup(student, report)
            with self.tracer.span(
                "pipeline.collection", alternative=self.pathway.collection
            ):
                collection = self._collect(report)
            with self.tracer.span("pipeline.cleaning", alternative="tubclean"):
                self._clean(collection, report)
            with self.tracer.span(
                "pipeline.training", alternative=self.pathway.training
            ):
                split = self._train(collection, session, report)
            with self.tracer.span(
                "pipeline.deployment", alternative="object-store"
            ):
                self._deploy(session, report)
            with self.tracer.span(
                "pipeline.evaluation", alternative=self.pathway.evaluation
            ):
                self._evaluate(report, split)
        if self.metrics is not None:
            self.metrics.counter("pipeline.runs", pathway=self.pathway.name).inc()
            for stage in report.stages:
                self.metrics.histogram(
                    "pipeline.stage_seconds", stage=stage.stage
                ).observe(stage.sim_seconds)
        return report

    # ---------------------------------------------------------- stages

    def _setup(self, student: str, report: PipelineReport):
        chi = self.chameleon
        start = chi.clock.now
        project, _ = chi.onboard_class("instructor", "university", [student])
        session = chi.login(student, project.project_id)
        details: dict[str, Any] = {"project": project.project_id}
        if self.pathway.needs_car:
            device = self.edge_service.enroll(session, "car-01")
            self.edge_service.allocate(session, device.device_id)
            deploy = self.edge_service.launch_container(session, device.device_id)
            details["device"] = device.device_id
            details["container_deploy_s"] = deploy.total_s
            self._device = device
        report.stages.append(
            StageReport("setup", self.pathway.name, chi.clock.now - start, details)
        )
        return session

    def _collect(self, report: PipelineReport) -> CollectionReport:
        alternative = self.pathway.collection
        route = self.topology.route("car-pi", "chi-uc")
        if alternative == "simulator":
            result = collect_via_simulator(
                self.track,
                self.work_dir / "tub",
                n_records=self.n_records,
                seed=self.seed,
                camera_hw=self.camera_hw,
            )
        elif alternative == "physical":
            result = collect_via_physical_car(
                self.track,
                self.work_dir / "tub",
                route_to_cloud=route,
                n_records=self.n_records,
                seed=self.seed,
                camera_hw=self.camera_hw,
            )
        elif alternative == "sample":
            store = self.chameleon.object_store
            try:
                store.container("sample-datasets").get(
                    f"sample-{self.track.name}.tar"
                )
            except ObjectStoreError:
                # Sample tarball not published yet: generate and publish it.
                generate_sample_datasets(
                    store,
                    [self.track],
                    self.work_dir / "publish",
                    n_records=self.n_records,
                    camera_hw=self.camera_hw,
                )
            result = collect_sample_dataset(
                store,
                self.track.name,
                self.work_dir / "download",
                route=self.topology.route("laptop", "chi-uc"),
            )
        else:  # pragma: no cover - guarded by pathway validation
            raise ConfigurationError(f"unknown collection path {alternative!r}")
        self.chameleon.clock.advance(result.wall_seconds)
        report.stages.append(
            StageReport(
                "collection",
                alternative,
                result.wall_seconds,
                {
                    "records": result.records,
                    "laps": result.laps,
                    "crashes": result.crashes,
                },
            )
        )
        return result

    def _clean(self, collection: CollectionReport, report: PipelineReport) -> None:
        cleaner = TubCleaner(collection.tub)
        marked = cleaner.clean(half_width=self.track.half_width)
        # Reviewing the video takes ~1 s per 10 records plus selection.
        review_s = len(collection.tub) / 10.0 + 30.0
        self.chameleon.clock.advance(review_s)
        report.stages.append(
            StageReport(
                "cleaning",
                "tubclean",
                review_s,
                {"marked": marked, "active": collection.tub.active_count},
            )
        )

    def _train(self, collection: CollectionReport, session, report: PipelineReport):
        alternative = self.pathway.training
        dataset = TubDataset(collection.tub)
        model = create_model(
            self.model_name,
            input_shape=(self.camera_hw[0], self.camera_hw[1], 3),
            scale=self.model_scale,
            seed=self.seed,
        )
        if model.targets == "memory":
            split = dataset.split_memory(model.mem_length, rng=self.seed)
        elif model.sequence_length > 0:
            split = dataset.split(
                rng=self.seed, targets=model.targets,
                sequence_length=model.sequence_length,
            )
        else:
            split = dataset.split(rng=self.seed, targets=model.targets)

        trainer = Trainer(
            batch_size=64,
            epochs=self.epochs,
            early_stopping=EarlyStopping(patience=4),
            shuffle_seed=self.seed,
        )
        history = trainer.fit(model, split)
        self.model = model

        n_samples = (
            len(split.y_train) if not isinstance(split.x_train, tuple)
            else len(split.y_train)
        )
        job = TrainingJob(
            flops_per_sample=estimate_flops_per_sample(model),
            n_samples=n_samples,
            epochs=history.epochs,
        )
        details: dict[str, Any] = {
            "epochs": history.epochs,
            "best_val_loss": history.best_val_loss,
        }
        start = self.chameleon.clock.now
        if alternative == "cloud-gpu":
            lease = self.chameleon.reserve_gpu_node(session, self.gpu_node_type)
            instance = self.chameleon.deploy_training_server(lease)
            run = self.chameleon.provisioning.run_training_job(instance, job)
            details["gpu"] = run.gpu_name
            details["gpu_seconds"] = run.simulated_seconds
            self.chameleon.leases.terminate(lease.lease_id)
        elif alternative == "local":
            laptop_s = job.total_flops / LAPTOP_FLOPS
            self.chameleon.clock.advance(laptop_s)
            details["laptop_seconds"] = laptop_s
        elif alternative == "pretrained":
            details["source"] = "object-store"
        else:  # pragma: no cover - guarded by pathway validation
            raise ConfigurationError(f"unknown training path {alternative!r}")
        report.stages.append(
            StageReport(
                "training", alternative, self.chameleon.clock.now - start, details
            )
        )
        return split

    def _deploy(self, session, report: PipelineReport) -> None:
        payload = save_model_bytes(self.model)
        store = self.chameleon.object_store
        store.create_container("models").put(
            f"{self.pathway.name}-{self.model_name}.npz", payload
        )
        seconds = 0.0
        details: dict[str, Any] = {"model_bytes": len(payload)}
        if self.pathway.evaluation == "physical":
            route = self.topology.route("chi-uc", "car-pi")
            transfer = scp_bytes(
                len(payload),
                route,
                clock=self.chameleon.clock,
                rng=self.seed + 3,
                tracer=self.tracer,
            )
            seconds = transfer.seconds
            details["scp_seconds"] = transfer.seconds
        report.stages.append(StageReport("deployment", "object-store", seconds, details))

    def _evaluate(self, report: PipelineReport, split) -> None:
        camera = CameraParams(height=self.camera_hw[0], width=self.camera_hw[1])
        evaluation = evaluate_model(
            self.model,
            self.track,
            ticks=self.eval_ticks,
            seed=self.seed + 11,
            camera=camera,
        )
        self.chameleon.clock.advance(evaluation.sim_seconds)
        report.evaluation = evaluation
        report.stages.append(
            StageReport(
                "evaluation",
                self.pathway.evaluation,
                evaluation.sim_seconds,
                {
                    "laps": evaluation.laps,
                    "errors": evaluation.errors,
                    "mean_speed": evaluation.mean_speed,
                },
            )
        )
